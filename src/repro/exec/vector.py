"""The vector engine: batch-at-a-time execution over columnar data.

Third executor behind :class:`repro.runtime.QuerySession` (after the
reference interpreter and the hash engine).  The whole ``Expr`` tree
runs over :class:`repro.relalg.columnar.ColumnarRelation`:

* selections compile their predicate once and filter a selection
  vector (zero data movement; see ``repro.exec.vector_predicates``);
* hash joins build an int-keyed index over the build side's key
  *columns* and emit gather lists (left index, right index) instead of
  merging per-row dicts -- output columns are assembled with one list
  comprehension per attribute;
* grouped aggregation walks the key columns once and aggregates value
  slices per group;
* generalized selection (``σ*_p[r1,...,rn]``, Definition 2.1) is two
  linear passes: batch-evaluate the predicate, then set-difference the
  preserved parts' value tuples (gathered from real + virtual-id
  columns) against the survivors and append the null-padded remainder.

Results are bit-identical to the reference interpreter (the property
suite cross-checks all three engines on NULL-salted randomized
databases).  Budget ticks happen at batch boundaries -- once per
operator result, same cadence as the row engines.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from itertools import groupby, repeat
from typing import Sequence

from repro.exec.hash_join import split_equi_conjuncts
from repro.expr.evaluate import Database
from repro.expr.nodes import (
    AdjustPadding,
    BaseRel,
    Expr,
    ExprError,
    GenSelect,
    GroupBy,
    Join,
    JoinKind,
    Project,
    Rename,
    Select,
    SemiJoin,
    Sort,
    UnionAll,
)
from repro.expr.orderprops import (
    order_satisfies,
    provided_order,
    streaming_run_prefix,
)
from repro.expr.predicates import Predicate, TRUE
from repro.exec.vector_predicates import compile_predicate
from repro.relalg.columnar import ColumnarRelation, concat_columns
from repro.runtime.faults import fault_point
from repro.runtime.feedback import monitor_lookup, monitor_record
from repro.runtime.metrics import record_engine_counter
from repro.runtime.tracing import add_counter, span, trace_op
from repro.relalg.nulls import NULL
from repro.relalg.ordering import value_key
from repro.relalg.relation import Relation
from repro.relalg.schema import Schema

#: Left-block size for the non-equi (nested loop) fallback: bounds the
#: size of the materialized candidate index arrays to block x |right|.
_NESTED_LOOP_BLOCK = 1024


def execute(expr: Expr, db: Database, budget=None) -> Relation:
    """Execute ``expr`` against ``db`` batch-at-a-time.

    Returns a row-store :class:`Relation` (the engines' common output
    currency); all intermediate results stay columnar.  ``budget``
    (a :class:`repro.runtime.Budget`) is ticked once per operator
    batch, mirroring the row engines' per-operator checkpoints.
    """
    out = _execute(expr, db, budget)
    return out.to_relation()


def _tick(budget, out: ColumnarRelation, where: str) -> ColumnarRelation:
    fault_point("vector", op=where.partition(":")[2])
    add_counter("batches")
    if budget is not None:
        budget.tick(rows=len(out), where=where)
    return out


def _restrict(
    relation: ColumnarRelation, needed: frozenset[str] | None
) -> ColumnarRelation:
    """Drop columns not in ``needed`` (zero-copy; ``None`` keeps all)."""
    if needed is None:
        return relation
    real = tuple(a for a in relation.real.attrs if a in needed)
    virtual = tuple(a for a in relation.virtual.attrs if a in needed)
    if len(real) == len(relation.real) and len(virtual) == len(relation.virtual):
        return relation
    return relation.with_schema(real, virtual)


def _execute(
    expr: Expr,
    db: Database,
    budget=None,
    needed: frozenset[str] | None = None,
) -> ColumnarRelation:
    """Tracing wrapper: one ``vector.<op>`` span per operator batch."""
    cached = monitor_lookup(expr, needed)
    if cached is not None:
        # adaptive resume: this (subtree, needed) pair was already
        # materialized before a re-plan; no recomputation, no re-tick
        return cached
    with trace_op("vector", expr):
        out = _execute_node(expr, db, budget, needed)
        add_counter("rows_out", len(out))
    monitor_record(expr, len(out), out, needed)
    return out


def _execute_node(
    expr: Expr,
    db: Database,
    budget=None,
    needed: frozenset[str] | None = None,
) -> ColumnarRelation:
    """Evaluate ``expr``, producing only the columns in ``needed``.

    ``needed`` flows top-down (late materialization): each operator
    asks its children only for the attributes its own output and
    predicates touch, so joins never assemble -- and scans never
    surface -- columns nobody above will read.  ``None`` means the
    full schema (the root call, and generalized selection, whose
    set-difference compensation is defined over whole rows).
    """
    if isinstance(expr, BaseRel):
        relation = db[expr.name]
        if set(relation.real) != set(expr.attrs):
            raise ExprError(
                f"base relation {expr.name!r} has attrs {sorted(relation.real)}, "
                f"expression expects {sorted(expr.attrs)}"
            )
        out = _restrict(ColumnarRelation.from_relation(relation), needed)
        return _tick(budget, out, "vector:scan")
    if isinstance(expr, Select):
        child_needed = None if needed is None else needed | expr.predicate.attrs
        child = _execute(expr.child, db, budget, child_needed)
        sel = compile_predicate(expr.predicate)(
            child.physical_columns(), child.physical_indices()
        )
        return _tick(budget, _restrict(child.view(sel), needed), "vector:select")
    if isinstance(expr, Project):
        if not expr.distinct:
            child = _execute(expr.child, db, budget, needed)
            real = tuple(
                a for a in expr.attrs if needed is None or a in needed
            )
            return _tick(
                budget,
                child.with_schema(Schema(real), child.virtual),
                "vector:project",
            )
        # DISTINCT keys on every projected attribute -- the child must
        # produce them all even when the parent reads fewer
        child = _execute(expr.child, db, budget, frozenset(expr.attrs))
        out = _restrict(_distinct_project(child, expr.attrs), needed)
        return _tick(budget, out, "vector:distinct")
    if isinstance(expr, Sort):
        key_attrs = frozenset(a for a, _ in expr.keys)
        child_needed = None if needed is None else needed | key_attrs
        child = _execute(expr.child, db, budget, child_needed)
        with span("sort.enforce", engine="vector"):
            fault_point("sort", op="enforce")
            from repro.relalg.ordering import tiebreak_keys

            out = _sort(child, tiebreak_keys(expr.keys, child.real.attrs))
        record_engine_counter("repro_sort_rows_total", len(out))
        return _tick(budget, _restrict(out, needed), "vector:sort")
    if isinstance(expr, Join):
        wanted = None
        if needed is not None:
            wanted = needed | expr.predicate.attrs
        left = _execute(
            expr.left, db, budget,
            None if wanted is None else wanted & expr.left.attr_set,
        ).compact()
        right = _execute(
            expr.right, db, budget,
            None if wanted is None else wanted & expr.right.attr_set,
        ).compact()
        out = _join(
            left, right, expr.predicate, expr.kind,
            merge_keys=_merge_key_order(expr),
        )
        return _tick(budget, _restrict(out, needed), "vector:join")
    if isinstance(expr, UnionAll):
        left = _execute(
            expr.left, db, budget,
            None if needed is None else needed & expr.left.attr_set,
        )
        right = _execute(
            expr.right, db, budget,
            None if needed is None else needed & expr.right.attr_set,
        )
        return _tick(budget, _outer_union(left, right), "vector:union")
    if isinstance(expr, SemiJoin):
        pred_attrs = expr.predicate.attrs
        left_needed = None
        if needed is not None:
            left_needed = (needed | pred_attrs) & expr.left.attr_set
        left = _execute(expr.left, db, budget, left_needed).compact()
        # the right side only ever feeds the predicate
        right = _execute(
            expr.right, db, budget, pred_attrs & expr.right.attr_set
        ).compact()
        out = _semi_join(left, right, expr.predicate, expr.anti)
        return _tick(budget, _restrict(out, needed), "vector:semijoin")
    if isinstance(expr, GroupBy):
        # child attrs beyond keys and aggregate arguments never
        # surface in the output
        child_needed = frozenset(expr.group_by) | frozenset(
            spec.arg for spec in expr.aggregates if spec.arg is not None
        )
        child = _execute(expr.child, db, budget, child_needed).compact()
        run = streaming_run_prefix(provided_order(expr.child), expr.group_by)
        if run:
            with span("groupby.stream", engine="vector", run=",".join(run)):
                fault_point("groupby", op="stream")
                out = _group_by_sorted(
                    child, expr.group_by, expr.aggregates, expr.name, run
                )
            record_engine_counter("repro_streaming_groupby_total")
        else:
            out = _group_by(child, expr.group_by, expr.aggregates, expr.name)
        return _tick(budget, _restrict(out, needed), "vector:groupby")
    if isinstance(expr, GenSelect):
        child = _execute(expr.child, db, budget).compact()
        run = _gs_run_prefix(expr)
        if run:
            with span("groupby.stream", engine="vector", run=",".join(run)):
                fault_point("groupby", op="stream")
                out = _generalized_selection_sorted(child, expr, run)
            record_engine_counter("repro_streaming_groupby_total")
        else:
            out = _generalized_selection(child, expr)
        return _tick(budget, _restrict(out, needed), "vector:genselect")
    if isinstance(expr, Rename):
        mapping = dict(expr.mapping)
        child_needed = None
        if needed is not None:
            child_needed = frozenset(
                a
                for a in expr.child.attr_set
                if mapping.get(a, a) in needed
            )
        child = _execute(expr.child, db, budget, child_needed)
        present = {
            old: new for old, new in mapping.items() if old in child.real
        }
        return _tick(budget, child.renamed(present), "vector:rename")
    if isinstance(expr, AdjustPadding):
        child_needed = None if needed is None else needed | {expr.witness}
        child = _execute(expr.child, db, budget, child_needed).compact()
        out = _adjust_padding(child, expr.witness, expr.targets)
        return _tick(budget, _restrict(out, needed), "vector:adjust")
    raise ExprError(f"cannot execute node of type {type(expr).__name__}")


# ---- projection ------------------------------------------------------


def _distinct_project(child: ColumnarRelation, attrs: Sequence[str]) -> ColumnarRelation:
    """SELECT DISTINCT: first-occurrence view over the kept columns."""
    cols = [child.gather(a) for a in attrs]
    indices = child.physical_indices()
    seen: set = set()
    seen_add = seen.add
    keep: list[int] = []
    if len(cols) == 1:
        for pos, v in enumerate(cols[0]):
            if v not in seen:
                seen_add(v)
                keep.append(indices[pos])
    else:
        for pos, key in enumerate(zip(*cols)):
            if key not in seen:
                seen_add(key)
                keep.append(indices[pos])
    return child.view(keep).with_schema(Schema(attrs), Schema(()))


# ---- ordering --------------------------------------------------------


def _sort(child: ColumnarRelation, keys) -> ColumnarRelation:
    """Argsort on the gathered key columns; rows move as a view.

    Uses the shared ordering convention (:mod:`repro.relalg.ordering`),
    so the vector Sort places NULLs exactly where the row engines do.
    """
    from repro.relalg.ordering import row_key

    cols = [child.gather(a) for a, _ in keys]
    positions = [(idx, desc) for idx, (_, desc) in enumerate(keys)]
    rows = list(zip(*cols))
    order = sorted(
        range(len(rows)), key=lambda p: row_key(rows[p], positions)
    )
    indices = child.physical_indices()
    return child.view([indices[p] for p in order])


_NULL_RANK = value_key(None)[0]


def _key_has_null(key: tuple) -> bool:
    return any(part[0] == _NULL_RANK for part in key)


def _merge_key_order(expr: Join):
    """Equi-keys ordered so both inputs arrive sorted on them, or None.

    The merge path applies when every equi-conjunct's attributes lead
    both children's provided orders, ascending, in a consistent
    sequence -- i.e. the optimizer (or the query itself) already paid
    for sorts covering the join keys.
    """
    keys, _residual = split_equi_conjuncts(
        expr.predicate,
        frozenset(expr.left.attr_set),
        frozenset(expr.right.attr_set),
    )
    if not keys:
        return None
    left_order = provided_order(expr.left)
    pos = {attr: i for i, (attr, desc) in enumerate(left_order) if not desc}
    if any(lk not in pos for lk, _ in keys):
        return None
    ordered = tuple(sorted(keys, key=lambda kv: pos[kv[0]]))
    req_left = tuple((lk, False) for lk, _ in ordered)
    req_right = tuple((rk, False) for _, rk in ordered)
    if not order_satisfies(left_order, req_left):
        return None
    if not order_satisfies(provided_order(expr.right), req_right):
        return None
    return ordered


def _merge_pairs(
    lcols: dict[str, list],
    rcols: dict[str, list],
    keys: Sequence[tuple[str, str]],
) -> tuple[list[int], list[int]]:
    """Run-merging join over key-sorted inputs (two pointers, no table).

    Emits the same (left-major, right-ascending-within-run) pair order
    as :func:`_hash_pairs` on the same inputs.  NULL-bearing keys never
    match and are skipped in place -- they sit in sorted position but
    form runs of their own.
    """
    lk = [tuple(map(value_key, t)) for t in zip(*(lcols[k] for k, _ in keys))]
    rk = [tuple(map(value_key, t)) for t in zip(*(rcols[k] for _, k in keys))]
    li: list[int] = []
    ri: list[int] = []
    li_extend, ri_extend = li.extend, ri.extend
    i, j = 0, 0
    nleft, nright = len(lk), len(rk)
    while i < nleft and j < nright:
        ki = lk[i]
        if _key_has_null(ki):
            i += 1
            continue
        kj = rk[j]
        if _key_has_null(kj):
            j += 1
            continue
        if ki < kj:
            i += 1
        elif kj < ki:
            j += 1
        else:
            i2 = i + 1
            while i2 < nleft and lk[i2] == ki:
                i2 += 1
            j2 = j + 1
            while j2 < nright and rk[j2] == kj:
                j2 += 1
            run_r = list(range(j, j2))
            for a in range(i, i2):
                li_extend(repeat(a, len(run_r)))
                ri_extend(run_r)
            i, j = i2, j2
    return li, ri


# ---- joins -----------------------------------------------------------


def _gathered(relation: ColumnarRelation) -> dict[str, list]:
    """Visible-aligned columns (compact relations return the backing)."""
    return {a: relation.gather(a) for a in relation.all_attrs}


def _join(
    left: ColumnarRelation,
    right: ColumnarRelation,
    predicate: Predicate,
    kind: JoinKind,
    merge_keys: Sequence[tuple[str, str]] | None = None,
) -> ColumnarRelation:
    real = left.real.concat(right.real)
    virtual = left.virtual.concat(right.virtual)
    lcols = _gathered(left)
    rcols = _gathered(right)
    nleft, nright = len(left), len(right)

    if predicate is TRUE and kind is JoinKind.INNER:
        li = [i for i in range(nleft) for _ in range(nright)]
        ri = list(range(nright)) * nleft
        return _assemble_join(real, virtual, left, right, lcols, rcols, li, ri, kind=None)

    keys, residual = split_equi_conjuncts(
        predicate,
        frozenset(left.all_attrs),
        frozenset(right.all_attrs),
    )
    if not keys:
        li, ri = _nested_loop_pairs(lcols, rcols, nleft, nright, predicate)
    else:
        if merge_keys is not None and set(merge_keys) == set(keys):
            with span("merge.join", engine="vector"):
                fault_point("merge", op="join")
                li, ri = _merge_pairs(lcols, rcols, merge_keys)
        else:
            li, ri = _hash_pairs(lcols, rcols, nleft, keys)
        if residual is not TRUE and li:
            li, ri = _filter_pairs(lcols, rcols, li, ri, residual)
    return _assemble_join(
        real, virtual, left, right, lcols, rcols, li, ri, kind=kind,
        nleft=nleft, nright=nright,
    )


def _hash_pairs(
    lcols: dict[str, list],
    rcols: dict[str, list],
    nleft: int,
    keys: Sequence[tuple[str, str]],
) -> tuple[list[int], list[int]]:
    """Build/probe an int-keyed index over the key columns."""
    li: list[int] = []
    ri: list[int] = []
    li_append, ri_append = li.append, ri.append
    li_extend, ri_extend = li.extend, ri.extend
    if len(keys) == 1:
        lkey, rkey = keys[0]
        build = rcols[rkey]
        table: dict = defaultdict(list)
        for j, v in enumerate(build):
            table[v].append(j)
        # NULL keys never match (SQL semantics): drop the whole NULL
        # bucket at once instead of testing every build value.
        table.pop(NULL, None)
        table.default_factory = None
        table_get = table.get
        # A NULL probe just misses the table -- no per-value null
        # check; map() keeps the lookup loop at C speed and repeat()
        # spares a temporary list per hit.
        for i, bucket in enumerate(map(table_get, lcols[lkey])):
            if bucket is not None:
                ri_extend(bucket)
                li_extend(repeat(i, len(bucket)))
        return li, ri
    left_cols = [lcols[k] for k, _ in keys]
    right_cols = [rcols[k] for _, k in keys]
    table = {}
    table_get = table.get
    for j, key in enumerate(zip(*right_cols)):
        if NULL not in key:
            bucket = table_get(key)
            if bucket is None:
                table[key] = [j]
            else:
                bucket.append(j)
    for i, key in enumerate(zip(*left_cols)):
        if NULL not in key:
            bucket = table_get(key)
            if bucket is not None:
                ri_extend(bucket)
                li_extend(repeat(i, len(bucket)))
    return li, ri


def _filter_pairs(
    lcols: dict[str, list],
    rcols: dict[str, list],
    li: list[int],
    ri: list[int],
    predicate: Predicate,
) -> tuple[list[int], list[int]]:
    """Residual-filter candidate pairs: gather only referenced attrs."""
    pair_cols: dict[str, list] = {}
    for attr in predicate.attrs:
        if attr in lcols:
            col = lcols[attr]
            pair_cols[attr] = [col[i] for i in li]
        else:
            col = rcols[attr]
            pair_cols[attr] = [col[j] for j in ri]
    surviving = compile_predicate(predicate)(pair_cols, range(len(li)))
    return [li[p] for p in surviving], [ri[p] for p in surviving]


def _nested_loop_pairs(
    lcols: dict[str, list],
    rcols: dict[str, list],
    nleft: int,
    nright: int,
    predicate: Predicate,
) -> tuple[list[int], list[int]]:
    """General fallback: blocked cross pairs, batch-filtered."""
    li: list[int] = []
    ri: list[int] = []
    if nleft == 0 or nright == 0:
        return li, ri
    pred = compile_predicate(predicate)
    right_range = list(range(nright))
    for start in range(0, nleft, _NESTED_LOOP_BLOCK):
        block = range(start, min(start + _NESTED_LOOP_BLOCK, nleft))
        cand_li = [i for i in block for _ in right_range]
        cand_ri = right_range * len(block)
        pair_cols: dict[str, list] = {}
        for attr in predicate.attrs:
            if attr in lcols:
                col = lcols[attr]
                pair_cols[attr] = [col[i] for i in cand_li]
            else:
                col = rcols[attr]
                pair_cols[attr] = [col[j] for j in cand_ri]
        surviving = pred(pair_cols, range(len(cand_li)))
        li.extend(cand_li[p] for p in surviving)
        ri.extend(cand_ri[p] for p in surviving)
    return li, ri


def _assemble_join(
    real: Schema,
    virtual: Schema,
    left: ColumnarRelation,
    right: ColumnarRelation,
    lcols: dict[str, list],
    rcols: dict[str, list],
    li: list[int],
    ri: list[int],
    kind: JoinKind | None,
    nleft: int = 0,
    nright: int = 0,
) -> ColumnarRelation:
    """Materialize output columns from gather lists plus outer padding."""
    pad_left: list[int] = []
    pad_right: list[int] = []
    if kind is not None and kind.is_outer:
        if kind.preserves_left:
            matched = bytearray(nleft)
            for i in li:
                matched[i] = 1
            pad_left = [i for i in range(nleft) if not matched[i]]
        if kind.preserves_right:
            matched = bytearray(nright)
            for j in ri:
                matched[j] = 1
            pad_right = [j for j in range(nright) if not matched[j]]

    n_pad_left, n_pad_right = len(pad_left), len(pad_right)
    columns: dict[str, list] = {}
    for attr in left.all_attrs:
        col = lcols[attr]
        out = list(map(col.__getitem__, li))
        if n_pad_left:
            out.extend(map(col.__getitem__, pad_left))
        if n_pad_right:
            out.extend([NULL] * n_pad_right)
        columns[attr] = out
    for attr in right.all_attrs:
        col = rcols[attr]
        out = list(map(col.__getitem__, ri))
        if n_pad_left:
            out.extend([NULL] * n_pad_left)
        if n_pad_right:
            out.extend(map(col.__getitem__, pad_right))
        columns[attr] = out
    nrows = len(li) + n_pad_left + n_pad_right
    return ColumnarRelation(real, virtual, columns, nrows)


def _semi_join(
    left: ColumnarRelation,
    right: ColumnarRelation,
    predicate: Predicate,
    anti: bool,
) -> ColumnarRelation:
    lcols = _gathered(left)
    rcols = _gathered(right)
    nleft, nright = len(left), len(right)
    keys, residual = split_equi_conjuncts(
        predicate,
        frozenset(left.all_attrs),
        frozenset(right.all_attrs),
    )
    if keys:
        li, ri = _hash_pairs(lcols, rcols, nleft, keys)
        if residual is not TRUE and li:
            li, ri = _filter_pairs(lcols, rcols, li, ri, residual)
    else:
        li, ri = _nested_loop_pairs(lcols, rcols, nleft, nright, predicate)
    matched = bytearray(nleft)
    for i in li:
        matched[i] = 1
    indices = left.physical_indices()
    want = 0 if anti else 1
    keep = [indices[pos] for pos in range(nleft) if matched[pos] == want]
    return left.view(keep)


# ---- union -----------------------------------------------------------


def _outer_union(left: ColumnarRelation, right: ColumnarRelation) -> ColumnarRelation:
    real = left.real.union(right.real)
    virtual = left.virtual.union(right.virtual)
    attrs = real.attrs + virtual.attrs
    columns = concat_columns([_gathered(left), _gathered(right)], attrs)
    return ColumnarRelation(real, virtual, columns, len(left) + len(right))


# ---- grouping --------------------------------------------------------


def _group_by(
    child: ColumnarRelation,
    group_by: Sequence[str],
    aggregates,
    name: str,
) -> ColumnarRelation:
    n = len(child)
    real_keys = [a for a in group_by if a in child.real]
    virtual_keys = [a for a in group_by if a in child.virtual]
    out_real = Schema(real_keys + [spec.output for spec in aggregates])
    vid = f"#{name}"
    out_virtual = Schema(virtual_keys + [vid])

    # dicts preserve insertion order, so ``groups`` doubles as the
    # first-occurrence group order the row engine produces
    key_cols = [child.gather(a) for a in group_by]
    if key_cols and all(spec.arg is None for spec in aggregates):
        # COUNT(*)-only grouping never touches member rows: unique
        # keys (dict.fromkeys) and group sizes (Counter) both come
        # from C-level single passes over the key column(s).
        keyed = key_cols[0] if len(key_cols) == 1 else list(zip(*key_cols))
        counts = Counter(keyed)
        uniques = list(dict.fromkeys(keyed))
        columns = {}
        if len(key_cols) == 1:
            columns[group_by[0]] = uniques
        else:
            for pos, attr in enumerate(group_by):
                columns[attr] = [key[pos] for key in uniques]
        for spec in aggregates:
            columns[spec.output] = list(map(counts.__getitem__, uniques))
        columns[vid] = [(name, i) for i in range(len(uniques))]
        return ColumnarRelation(out_real, out_virtual, columns, len(uniques))
    groups: dict = {}
    if len(key_cols) == 1:
        col = key_cols[0]
        groups_get = groups.get
        for i in range(n):
            k = (col[i],)
            members = groups_get(k)
            if members is None:
                groups[k] = members = []
            members.append(i)
    elif key_cols:
        groups_get = groups.get
        for i, k in enumerate(zip(*key_cols)):
            members = groups_get(k)
            if members is None:
                groups[k] = members = []
            members.append(i)
    else:
        if n:
            groups[()] = list(range(n))

    if not group_by and not groups:
        # SQL: a global aggregate over an empty input yields one row
        groups[()] = []

    columns: dict[str, list] = {}
    for pos, attr in enumerate(group_by):
        columns[attr] = [key[pos] for key in groups]
    for spec in aggregates:
        if spec.arg is None:
            columns[spec.output] = [len(members) for members in groups.values()]
        else:
            col = child.gather(spec.arg)
            columns[spec.output] = [
                spec.compute([col[i] for i in members])
                for members in groups.values()
            ]
    columns[vid] = [(name, i) for i in range(len(groups))]
    return ColumnarRelation(out_real, out_virtual, columns, len(groups))


def _run_boundaries(
    run_cols: Sequence[list], n: int
) -> list[tuple[int, int]]:
    """``[start, end)`` index ranges of maximal equal-key runs.

    ``itertools.groupby`` keeps the scan at C speed (one Python-level
    iteration per *run*, not per row); a per-row tuple-building loop
    here costs more than the whole hash aggregation it is meant to
    beat.
    """
    if n == 0:
        return []
    it = run_cols[0] if len(run_cols) == 1 else zip(*run_cols)
    bounds: list[tuple[int, int]] = []
    start = 0
    for _key, group in groupby(it):
        length = len(list(group))
        bounds.append((start, start + length))
        start += length
    return bounds


def _group_by_sorted(
    child: ColumnarRelation,
    group_by: Sequence[str],
    aggregates,
    name: str,
    run_attrs: Sequence[str],
) -> ColumnarRelation:
    """Streaming grouped aggregation over ``run_attrs``-clustered input.

    When the runs cover *all* group keys, every run is one group and
    the pass is pure boundary detection plus aggregate computation
    over column slices -- no per-row dict at all.  With a partial
    prefix, a per-run dict (bounded by the run, not the input) handles
    the remaining keys.  Output rows, order and virtual ids match
    :func:`_group_by` exactly (groups are confined to runs, and runs
    arrive in input order, so per-run first-occurrence order *is* the
    global first-occurrence order).
    """
    n = len(child)
    real_keys = [a for a in group_by if a in child.real]
    virtual_keys = [a for a in group_by if a in child.virtual]
    out_real = Schema(real_keys + [spec.output for spec in aggregates])
    vid = f"#{name}"
    out_virtual = Schema(virtual_keys + [vid])

    key_cols = [child.gather(a) for a in group_by]
    run_cols = [child.gather(a) for a in run_attrs]
    arg_cols = {
        spec.arg: child.gather(spec.arg)
        for spec in aggregates
        if spec.arg is not None
    }
    columns: dict[str, list] = {a: [] for a in group_by}
    agg_out: dict[str, list] = {spec.output: [] for spec in aggregates}
    bounds = _run_boundaries(run_cols, n)

    if set(run_attrs) == set(group_by):
        # one run == one group: boundary scan + slice aggregates
        for start, end in bounds:
            for attr, col in zip(group_by, key_cols):
                columns[attr].append(col[start])
            for spec in aggregates:
                if spec.arg is None:
                    agg_out[spec.output].append(end - start)
                else:
                    agg_out[spec.output].append(
                        spec.compute(arg_cols[spec.arg][start:end])
                    )
    else:
        for start, end in bounds:
            groups: dict = {}
            groups_get = groups.get
            for i in range(start, end):
                k = tuple(col[i] for col in key_cols)
                members = groups_get(k)
                if members is None:
                    groups[k] = members = []
                members.append(i)
            for k, members in groups.items():
                for pos, attr in enumerate(group_by):
                    columns[attr].append(k[pos])
                for spec in aggregates:
                    if spec.arg is None:
                        agg_out[spec.output].append(len(members))
                    else:
                        col = arg_cols[spec.arg]
                        agg_out[spec.output].append(
                            spec.compute([col[i] for i in members])
                        )

    ngroups = len(columns[group_by[0]])
    out_columns = {**columns, **agg_out}
    out_columns[vid] = [(name, i) for i in range(ngroups)]
    return ColumnarRelation(out_real, out_virtual, out_columns, ngroups)


# ---- generalized selection (Definition 2.1) --------------------------


def _gs_run_prefix(expr: GenSelect) -> tuple[str, ...]:
    """Run keys for streaming σ*: the child-order prefix inside the
    intersection of the preserved specs' attribute sets (every part
    must be confined to one run)."""
    if not expr.preserved:
        return ()
    allowed = None
    for pres in expr.preserved:
        attrs = frozenset(pres.real) | frozenset(pres.virtual)
        allowed = attrs if allowed is None else (allowed & attrs)
    return streaming_run_prefix(provided_order(expr.child), allowed)


def _generalized_selection_sorted(
    child: ColumnarRelation, expr: GenSelect, run_attrs: Sequence[str]
) -> ColumnarRelation:
    """Per-run σ* over ``run_attrs``-clustered input.

    Same bag as :func:`_generalized_selection`; state (survivor and
    emitted part sets) is bounded by one run.  Pad rows surface at
    their run's boundary rather than all at the end -- σ* promises no
    order, and verification is bag-based.
    """
    n = len(child)
    columns = child.physical_columns()  # compact: physical == visible
    pred = compile_predicate(expr.predicate)
    target = child.all_attrs
    run_cols = [columns[a] for a in run_attrs]
    out_columns: dict[str, list] = {a: [] for a in target}

    spec_info = []
    for pres in expr.preserved:
        spec_attrs = pres.real | pres.virtual
        order = tuple(a for a in target if a in spec_attrs)
        presence_attrs = tuple(
            a for a in order if a in (pres.virtual or pres.real)
        )
        spec_of = {a: pos for pos, a in enumerate(order)}
        spec_info.append((order, presence_attrs, spec_of))

    pads_total = 0
    for start, end in _run_boundaries(run_cols, n):
        sel = pred(columns, range(start, end))
        for a in target:
            col = columns[a]
            out_columns[a].extend(col[i] for i in sel)
        for order, presence_attrs, spec_of in spec_info:
            part_cols = [columns[a] for a in order]
            presence_cols = [columns[a] for a in presence_attrs]

            def part(i: int) -> tuple:
                return tuple(c[i] for c in part_cols)

            def present(i: int) -> bool:
                return any(c[i] is not NULL for c in presence_cols)

            emitted = {part(i) for i in sel if present(i)}
            pad_parts: list[tuple] = []
            for i in range(start, end):
                if present(i):
                    p = part(i)
                    if p not in emitted:
                        emitted.add(p)
                        pad_parts.append(p)
            if pad_parts:
                pads_total += len(pad_parts)
                for a in target:
                    col = out_columns[a]
                    pos = spec_of.get(a)
                    if pos is None:
                        col.extend([NULL] * len(pad_parts))
                    else:
                        col.extend(p[pos] for p in pad_parts)
    if pads_total:
        add_counter("gs_preserved_rows", pads_total)
    nrows = len(next(iter(out_columns.values()))) if target else 0
    return ColumnarRelation(child.real, child.virtual, out_columns, nrows)


def _generalized_selection(
    child: ColumnarRelation, expr: GenSelect
) -> ColumnarRelation:
    """σ*_p[preserved...] as set-difference over virtual-id columns.

    Pass 1 batch-evaluates the predicate; pass 2, per preserved
    sub-relation, gathers the part tuples (its real + virtual-id
    columns), subtracts the parts surviving in the qualifying rows,
    and appends the remainder null-padded -- linear in the input, no
    per-row dict handling.
    """
    n = len(child)
    columns = child.physical_columns()  # compact: physical == visible
    sel = compile_predicate(expr.predicate)(columns, range(n))
    selected = set(sel)
    target = child.all_attrs

    out_columns = {a: [columns[a][i] for i in sel] for a in target}
    for pres in expr.preserved:
        spec_attrs = pres.real | pres.virtual
        order = tuple(a for a in target if a in spec_attrs)
        part_cols = [columns[a] for a in order]
        parts = list(zip(*part_cols)) if part_cols else []
        presence_attrs = tuple(
            a for a in order if a in (pres.virtual or pres.real)
        )
        presence_cols = [columns[a] for a in presence_attrs]
        present = [
            any(v is not NULL for v in values)
            for values in zip(*presence_cols)
        ]
        surviving = {parts[i] for i in sel if present[i]}
        pad_parts: list[tuple] = []
        emitted = surviving  # absorb new parts as they are emitted
        for i in range(n):
            if present[i]:
                part = parts[i]
                if part not in emitted:
                    emitted.add(part)
                    pad_parts.append(part)
        if pad_parts:
            add_counter("gs_preserved_rows", len(pad_parts))
            spec_of = {a: pos for pos, a in enumerate(order)}
            for a in target:
                col = out_columns[a]
                pos = spec_of.get(a)
                if pos is None:
                    col.extend([NULL] * len(pad_parts))
                else:
                    col.extend(part[pos] for part in pad_parts)
    nrows = len(next(iter(out_columns.values()))) if target else 0
    return ColumnarRelation(child.real, child.virtual, out_columns, nrows)


# ---- padding repair --------------------------------------------------


def _adjust_padding(
    child: ColumnarRelation, witness: str, targets: Sequence[str]
) -> ColumnarRelation:
    real = Schema(a for a in child.real if a != witness)
    wcol = child.gather(witness)
    padded = [v == 0 for v in wcol]
    columns: dict[str, list] = {}
    for attr in real.attrs + child.virtual.attrs:
        col = child.gather(attr)
        if attr in targets:
            columns[attr] = [
                NULL if flag else v for flag, v in zip(padded, col)
            ]
        else:
            columns[attr] = col
    return ColumnarRelation(real, child.virtual, columns, len(child))
