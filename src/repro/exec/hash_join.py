"""Hash-based (outer) joins.

The join predicate's equality atoms between the two sides become the
hash key; remaining conjuncts are applied as a residual filter on each
probe hit.  NULL keys never match (SQL semantics) and never enter the
hash table.  Outer variants track matched build rows / probe rows to
emit the null-padded remainder.  When no cross-side equality atom
exists the join degrades to a (filtered) block nested loop, which is
the correct general fallback.
"""

from __future__ import annotations

from typing import Any

from repro.expr.nodes import JoinKind
from repro.expr.predicates import (
    Col,
    Comparison,
    Predicate,
    conjuncts_of,
    make_conjunction,
)
from repro.relalg.nulls import Truth, is_null
from repro.relalg.relation import Relation, pad_row
from repro.relalg.row import Row


def split_equi_conjuncts(
    predicate: Predicate,
    left_attrs: frozenset[str],
    right_attrs: frozenset[str],
) -> tuple[list[tuple[str, str]], Predicate]:
    """Split the predicate into hashable key pairs and a residual.

    Returns ``([(left_attr, right_attr), ...], residual_predicate)``;
    a key pair comes from an equality atom ``Col = Col`` with one
    column on each side.

    Duplicate equality atoms -- including the reversed form, ``a = b``
    alongside ``b = a`` (``_equi_pair`` orients both to the same
    pair) -- collapse into a single hash key: once the key enforces
    the equality, re-checking it per probe hit in the residual (or
    widening the key tuple) is pure waste.
    """
    keys: list[tuple[str, str]] = []
    seen: set[tuple[str, str]] = set()
    residual: list[Predicate] = []
    for atom in conjuncts_of(predicate):
        pair = _equi_pair(atom, left_attrs, right_attrs)
        if pair is not None:
            if pair not in seen:
                seen.add(pair)
                keys.append(pair)
        else:
            residual.append(atom)
    return keys, make_conjunction(residual)


def _equi_pair(
    atom: Predicate,
    left_attrs: frozenset[str],
    right_attrs: frozenset[str],
) -> tuple[str, str] | None:
    if not (isinstance(atom, Comparison) and atom.op == "="):
        return None
    if not (isinstance(atom.left, Col) and isinstance(atom.right, Col)):
        return None
    a, b = atom.left.name, atom.right.name
    if a in left_attrs and b in right_attrs:
        return (a, b)
    if b in left_attrs and a in right_attrs:
        return (b, a)
    return None


def hash_join(
    left: Relation,
    right: Relation,
    predicate: Predicate,
    kind: JoinKind = JoinKind.INNER,
) -> Relation:
    """Join with hash-partitioning on the predicate's equality atoms."""
    left_attrs = frozenset(left.all_attrs)
    right_attrs = frozenset(right.all_attrs)
    keys, residual = split_equi_conjuncts(predicate, left_attrs, right_attrs)

    real = left.real.concat(right.real)
    virtual = left.virtual.concat(right.virtual)
    target = tuple(real) + tuple(virtual)

    if not keys:
        return _nested_loop(left, right, predicate, kind, target, real, virtual)

    left_keys = [k for k, _ in keys]
    right_keys = [k for _, k in keys]

    # build on the right side
    table: dict[tuple[Any, ...], list[int]] = {}
    for index, row in enumerate(right.rows):
        key = row.values_tuple(right_keys)
        if any(is_null(v) for v in key):
            continue
        table.setdefault(key, []).append(index)

    out: list[Row] = []
    right_matched = [False] * len(right.rows)
    for row in left.rows:
        key = row.values_tuple(left_keys)
        matched = False
        if not any(is_null(v) for v in key):
            for index in table.get(key, ()):
                candidate = row.merge(right.rows[index])
                if residual.evaluate(candidate) is Truth.TRUE:
                    out.append(candidate)
                    matched = True
                    right_matched[index] = True
        if not matched and kind.preserves_left:
            out.append(pad_row(row, target))
    if kind.preserves_right:
        for index, flag in enumerate(right_matched):
            if not flag:
                out.append(pad_row(right.rows[index], target))
    return Relation(real, virtual, out)


def _nested_loop(left, right, predicate, kind, target, real, virtual) -> Relation:
    out: list[Row] = []
    right_matched = [False] * len(right.rows)
    for row in left.rows:
        matched = False
        for index, other in enumerate(right.rows):
            candidate = row.merge(other)
            if predicate.evaluate(candidate) is Truth.TRUE:
                out.append(candidate)
                matched = True
                right_matched[index] = True
        if not matched and kind.preserves_left:
            out.append(pad_row(row, target))
    if kind.preserves_right:
        for index, flag in enumerate(right_matched):
            if not flag:
                out.append(pad_row(right.rows[index], target))
    return Relation(real, virtual, out)
