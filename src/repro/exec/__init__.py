"""Fast execution engine.

The reference interpreter (:func:`repro.expr.evaluate`) uses
nested-loop joins -- perfect as ground truth, quadratic in practice.
This package provides a production-style executor with hash-based
equi-joins (inner and outer), hash-partitioned generalized selection
and the same semantics bit for bit; the test suite cross-checks it
against the reference interpreter on randomized queries.
"""

from repro.exec.engine import execute
from repro.exec.hash_join import hash_join

__all__ = ["execute", "hash_join"]
