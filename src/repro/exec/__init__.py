"""Fast execution engines.

The reference interpreter (:func:`repro.expr.evaluate`) uses
nested-loop joins -- perfect as ground truth, quadratic in practice.
This package provides two production-style executors with the same
semantics bit for bit:

* the **hash engine** (:func:`execute`): row-at-a-time with hash-based
  equi-joins (inner and outer) and hash-partitioned generalized
  selection;
* the **vector engine** (:func:`execute_vector`): batch-at-a-time over
  the columnar substrate (:mod:`repro.relalg.columnar`) -- compiled
  predicate closures, gather-list hash joins, grouped aggregation over
  key columns, and generalized selection as set-difference over
  virtual-id columns.

The property-test suite cross-checks both against the reference
interpreter on NULL-salted randomized queries.
"""

from repro.exec.engine import execute
from repro.exec.hash_join import hash_join
from repro.exec.vector import execute as execute_vector

__all__ = ["execute", "execute_vector", "hash_join"]
