"""Textbook (Selinger-style) cardinality estimation.

``estimate(expr, stats)`` returns an :class:`Estimate` for every node:
output cardinality plus per-attribute distinct counts, which the
selectivity formulas consume:

* equality between attributes: ``1 / max(d(a), d(b))``;
* equality with a constant: ``1 / d(a)``;
* range comparisons: 1/3;  inequality (``<>``): ``1 - 1/max(d)``;
* conjunctions multiply (independence assumption).

Outer joins add the preserved side's unmatched estimate; generalized
selection is costed like the MGOJ the paper equates it with: selected
rows plus the expected padding of each preserved group.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.expr.nodes import (
    AdjustPadding,
    BaseRel,
    Expr,
    GenSelect,
    GroupBy,
    Join,
    JoinKind,
    Project,
    Rename,
    Select,
    SemiJoin,
    UnionAll,
)
from repro.expr.predicates import (
    Arith,
    Col,
    Comparison,
    Const,
    Predicate,
    conjuncts_of,
)
from repro.optimizer.stats import Statistics

_RANGE_SELECTIVITY = 1 / 3


@dataclass
class Estimate:
    """Estimated output cardinality, distinct counts, and frequencies.

    ``freq`` maps attribute -> (value counts, total) copied from the
    base table the attribute originates in; it is carried through
    joins and selections as an (independence-assumption) approximation
    of the value distribution.
    """

    rows: float
    distinct: dict[str, float]
    freq: dict[str, tuple[dict, int]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.freq is None:
            self.freq = {}

    def distinct_of(self, attr: str) -> float:
        return max(1.0, self.distinct.get(attr, max(1.0, self.rows / 10)))

    def fraction(self, attr: str, op: str, value) -> float | None:
        """Fraction of base values satisfying ``attr op value``; None

        when no frequency information is available.
        """
        from repro.relalg.nulls import Truth, compare

        if attr not in self.freq:
            return None
        counts, total = self.freq[attr]
        if total <= 0:
            return None
        matching = sum(
            c for v, c in counts.items() if compare(v, op, value) is Truth.TRUE
        )
        return matching / total


def estimate(
    expr: Expr, stats: Statistics, memo: dict[Expr, Estimate] | None = None
) -> Estimate:
    """Estimate the output of ``expr`` under ``stats``.

    ``memo`` (node -> Estimate) shares work across structurally equal
    subtrees; the enumerator's plans overlap almost entirely, so the
    optimizer passes one memo across the whole costing loop.  Cached
    Estimates are shared -- callers must treat them as immutable.

    When ``stats`` carries a feedback store (see
    :class:`repro.optimizer.stats.Statistics`), every node's static
    estimate is corrected by observed cardinalities before parents
    consume it: an exact subtree observation overrides the guess
    outright, and a per-predicate selectivity factor transfers to
    every re-ordered plan that evaluates the same predicate.
    """
    if memo is None:
        return _corrected(_estimate(expr, stats, None), expr, stats)
    found = memo.get(expr)
    if found is None:
        found = _corrected(_estimate(expr, stats, memo), expr, stats)
        memo[expr] = found
    return found


def _corrected(est: Estimate, expr: Expr, stats: Statistics) -> Estimate:
    """Apply cardinality feedback, when a store is attached."""
    feedback = getattr(stats, "feedback", None)
    if feedback is None:
        return est
    rows = feedback.corrected_rows(expr, est.rows, stats.version)
    if rows is None or rows == est.rows:
        return est
    return _scaled(est, rows)


def _estimate(expr: Expr, stats: Statistics, memo) -> Estimate:
    if isinstance(expr, BaseRel):
        table = stats.table(expr.name)
        rows = float(table.row_count)
        distinct = {a: float(table.distinct_of(a)) for a in expr.attrs}
        distinct[expr.virtual_attrs[0]] = rows
        freq = {
            a: (counts, table.row_count)
            for a, counts in table.frequencies.items()
        }
        return Estimate(rows, distinct, freq)

    if isinstance(expr, Rename):
        child = estimate(expr.child, stats, memo)
        mapping = dict(expr.mapping)
        distinct = {mapping.get(a, a): d for a, d in child.distinct.items()}
        freq = {mapping.get(a, a): f for a, f in child.freq.items()}
        return Estimate(child.rows, distinct, freq)

    if isinstance(expr, Select):
        child = estimate(expr.child, stats, memo)
        sel = selectivity(expr.predicate, child)
        return _scaled(child, child.rows * sel)

    if isinstance(expr, Project):
        child = estimate(expr.child, stats, memo)
        keep = set(expr.all_attrs)
        distinct = {a: d for a, d in child.distinct.items() if a in keep}
        rows = child.rows
        if expr.distinct:
            cap = 1.0
            for a in expr.attrs:
                cap *= child.distinct_of(a)
            rows = min(rows, cap)
        freq = {a: f for a, f in child.freq.items() if a in keep}
        return Estimate(rows, distinct, freq)

    if isinstance(expr, Join):
        left = estimate(expr.left, stats, memo)
        right = estimate(expr.right, stats, memo)
        merged = {**left.distinct, **right.distinct}
        both = Estimate(left.rows * right.rows, merged, {**left.freq, **right.freq})
        sel = selectivity(expr.predicate, both)
        inner_rows = left.rows * right.rows * sel
        rows = inner_rows
        if expr.kind.preserves_left:
            rows += max(0.0, left.rows - inner_rows)
        if expr.kind.preserves_right:
            rows += max(0.0, right.rows - inner_rows)
        out = Estimate(rows, merged, both.freq)
        out.distinct = {a: min(d, rows) if rows else 0.0 for a, d in merged.items()}
        return out

    if isinstance(expr, UnionAll):
        left = estimate(expr.left, stats, memo)
        right = estimate(expr.right, stats, memo)
        distinct = {
            a: left.distinct_of(a) + right.distinct_of(a)
            for a in set(left.distinct) | set(right.distinct)
        }
        return Estimate(left.rows + right.rows, distinct, {**left.freq, **right.freq})

    if isinstance(expr, SemiJoin):
        left = estimate(expr.left, stats, memo)
        right = estimate(expr.right, stats, memo)
        both = Estimate(
            left.rows * right.rows,
            {**left.distinct, **right.distinct},
            {**left.freq, **right.freq},
        )
        sel = selectivity(expr.predicate, both)
        match_fraction = min(1.0, sel * max(right.rows, 0.0))
        if expr.anti:
            match_fraction = 1.0 - match_fraction
        return _scaled(left, left.rows * match_fraction)

    if isinstance(expr, GroupBy):
        child = estimate(expr.child, stats, memo)
        groups = 1.0
        for key in expr.group_by:
            groups *= child.distinct_of(key)
        groups = min(groups, child.rows)
        distinct = {k: min(child.distinct_of(k), groups) for k in expr.group_by}
        for spec in expr.aggregates:
            distinct[spec.output] = groups
        distinct[expr.virtual_attrs[-1]] = groups
        freq = {a: f for a, f in child.freq.items() if a in expr.group_by}
        return Estimate(groups, distinct, freq)

    if isinstance(expr, GenSelect):
        child = estimate(expr.child, stats, memo)
        sel = selectivity(expr.predicate, child)
        rows = child.rows * sel
        for pres in expr.preserved:
            # expected padding: the group's tuple count scaled by the
            # chance that none of its extensions survives
            group_rows = 1.0
            for attr in sorted(pres.virtual):
                group_rows = max(group_rows, child.distinct_of(attr))
            rows += group_rows * (1.0 - sel)
        out = _scaled(child, rows)
        return out

    if isinstance(expr, AdjustPadding):
        child = estimate(expr.child, stats, memo)
        distinct = {
            a: d for a, d in child.distinct.items() if a != expr.witness
        }
        freq = {a: f for a, f in child.freq.items() if a != expr.witness}
        return Estimate(child.rows, distinct, freq)

    # unknown nodes: propagate the first child
    children = expr.children()
    if children:
        return estimate(children[0], stats, memo)
    raise TypeError(f"cannot estimate {type(expr).__name__}")


def _scaled(child: Estimate, rows: float) -> Estimate:
    rows = max(0.0, rows)
    distinct = {a: min(d, rows) if rows else 0.0 for a, d in child.distinct.items()}
    return Estimate(rows, distinct, dict(child.freq))


# A hard-zero selectivity would zero the cost of every plan containing
# the atom, making the DP/closure choice among those plans arbitrary
# (any tie-break wins).  Flooring at an epsilon keeps relative costs
# ordered while still treating the atom as extremely selective.
_MIN_SELECTIVITY = 1e-9


def selectivity(predicate: Predicate, inputs: Estimate) -> float:
    """Estimated fraction of rows satisfying ``predicate``."""
    sel = 1.0
    for atom in conjuncts_of(predicate):
        sel *= _atom_selectivity(atom, inputs)
    return min(1.0, max(_MIN_SELECTIVITY, sel))


def _atom_selectivity(atom: Predicate, inputs: Estimate) -> float:
    if not isinstance(atom, Comparison):
        return _RANGE_SELECTIVITY
    left_attr = _single_attr(atom.left)
    right_attr = _single_attr(atom.right)
    const = _constant_of(atom.right) if left_attr else _constant_of(atom.left)
    attr = left_attr or right_attr
    if attr and const is not _NO_CONST and not (left_attr and right_attr):
        fraction = inputs.fraction(attr, atom.op if left_attr else _flip(atom.op), const)
        if fraction is not None:
            return fraction
    if atom.op == "=":
        if left_attr and right_attr:
            return 1.0 / max(
                inputs.distinct_of(left_attr), inputs.distinct_of(right_attr)
            )
        if attr:
            return 1.0 / inputs.distinct_of(attr)
        return 0.5
    if atom.op in ("<>", "!="):
        return 1.0 - _atom_selectivity(
            Comparison(atom.left, "=", atom.right), inputs
        )
    return _RANGE_SELECTIVITY


_NO_CONST = object()

_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>", "!=": "!="}


def _flip(op: str) -> str:
    return _FLIPPED[op]


def _constant_of(term):
    if isinstance(term, Const):
        return term.literal
    return _NO_CONST


def _single_attr(term) -> str | None:
    if isinstance(term, Col):
        return term.name
    if isinstance(term, Arith):
        attrs = term.attrs
        if len(attrs) == 1:
            return next(iter(attrs))
    return None
