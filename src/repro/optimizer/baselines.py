"""Baselines the paper's contribution is measured against.

* ``as_written`` -- no reordering at all: execute the query in the
  shape the analyst wrote (what a system without outer-join/aggregate
  reordering must do for these queries);
* ``optimize_no_gs`` -- classical reordering only (commutativity and
  the valid associativities), with *no* generalized selection: complex
  predicates and aggregation-referencing predicates freeze the order,
  which is the pre-paper state of the art the introduction describes;
* ``tis_cost`` -- tuple-iteration-semantics cost of a nested
  join-aggregate query (the execution strategy GANS87/MURA92 unnest
  away from): number of predicate evaluations of the nested loops;
* ``left_deep_join_order`` -- the classic System-R dynamic program
  restricted to left-deep trees (cross products deferred), the
  baseline the large-n enumeration tiers are measured against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime -> optimizer)
    from repro.runtime.budget import Budget

from repro.core.aggregation import pull_up_aggregations
from repro.core.simplify import simplify_outer_joins
from repro.core.transform import enumerate_plans
from repro.core.unnest import NestedCountQuery
from repro.errors import OptimizerInternalError, UserInputError
from repro.expr.evaluate import Database
from repro.expr.nodes import Expr, Join, JoinKind
from repro.expr.predicates import make_conjunction
from repro.optimizer.cost import CostModel, estimated_cost
from repro.optimizer.planner import OptimizationResult
from repro.optimizer.stats import Statistics
from repro.optimizer.tiers import peel_wrappers, rebuild_wrappers
from repro.runtime.tracing import span


class EmptyClosureError(OptimizerInternalError):
    """Plan enumeration produced no plans at all.

    Only possible under a degenerate configuration (``max_plans=0`` or
    a budget that expires before the seed plan is emitted); typed so
    the degradation ladder absorbs it instead of an ``IndexError`` /
    ``ValueError`` escaping from deep inside a baseline.
    """


def as_written(query: Expr, stats: Statistics) -> float:
    """Cost of executing the query exactly as written."""
    return estimated_cost(query, stats)


def optimize_no_gs(
    query: Expr, stats: Statistics, max_plans: int = 5000
) -> OptimizationResult:
    """Best plan reachable without generalized selection.

    Aggregations stay where they are (pulling them up requires the GS
    deferral for predicates on aggregated columns); the join core is
    reordered with the classical rules only.
    """
    normalized = simplify_outer_joins(query)
    plans = enumerate_plans(normalized, max_plans=max_plans, with_gs=False)
    model = CostModel(stats)
    scored = sorted(
        ((model.cost(plan), i, plan) for i, plan in enumerate(plans)),
        key=lambda t: (t[0], t[1]),
    )
    if not scored:
        raise EmptyClosureError(
            "classical closure enumeration produced no plans "
            f"(max_plans={max_plans})"
        )
    best_cost, _, best = scored[0]
    return OptimizationResult(
        best=best,
        best_cost=best_cost,
        original_cost=model.cost(query),
        plans_considered=len(plans),
        ranked=[(c, p) for c, _, p in scored[:10]],
    )


#: Hard cap on the classical closure the heuristic may explore; keeps
#: the fallback stage bounded even with no deadline set.
GREEDY_PLAN_CAP = 64


def greedy_reorder(
    query: Expr, stats: Statistics, budget: "Budget | None" = None
) -> OptimizationResult:
    """Bounded-effort heuristic: the degradation ladder's middle rung.

    When the full rewrite closure is too expensive (budget exhausted,
    or the optimizer declined the query), this produces a *good-enough*
    plan cheaply:

    * pure inner-join cores go through the System-R dynamic program
      (:func:`repro.optimizer.dp.dp_join_order`) -- polynomial-ish on
      paper-sized queries and guaranteed to terminate;
    * anything else (outer joins, GS wrappers) falls back to a tiny
      classical closure (``with_gs=False``, capped at
      ``GREEDY_PLAN_CAP`` plans) and picks the cheapest member.

    Either way the result is bag-equivalent to ``query`` -- both
    strategies only apply verified rewrites.
    """
    with span("optimize.greedy"):
        return _greedy_reorder(query, stats, budget)


def _greedy_reorder(
    query: Expr, stats: Statistics, budget: "Budget | None"
) -> OptimizationResult:
    from repro.optimizer.dp import DpError, dp_join_order

    normalized = simplify_outer_joins(query)
    # peel the unary wrapper chain off the join core (same walk as
    # reorder_pipeline, minus the aggregation push-up: no GS here)
    stack, core = peel_wrappers(normalized)
    try:
        ordered = dp_join_order(core, stats, budget=budget)
        best: Expr = rebuild_wrappers(stack, ordered)
        plans_considered = 1
    except DpError:
        model = CostModel(stats)
        plans = enumerate_plans(
            normalized, max_plans=GREEDY_PLAN_CAP, with_gs=False, budget=budget
        )
        if not plans:
            raise EmptyClosureError(
                "greedy fallback closure produced no plans "
                f"(max_plans={GREEDY_PLAN_CAP})"
            ) from None
        best = min(
            plans, key=lambda plan: (model.cost(plan), repr(plan))
        )
        plans_considered = len(plans)
    best_cost = estimated_cost(best, stats)
    return OptimizationResult(
        best=best,
        best_cost=best_cost,
        original_cost=estimated_cost(query, stats),
        plans_considered=plans_considered,
        ranked=[(best_cost, best)],
    )


def tis_cost(query: NestedCountQuery, db: Database) -> int:
    """Predicate evaluations performed by tuple iteration semantics."""

    def cost_level(level: NestedCountQuery, depth_rows: int) -> int:
        relation = db[level.relation.name]
        evaluations = depth_rows * len(relation)
        if level.subquery is not None:
            # every (context, row) pair descends into the subquery; we
            # charge the full fan-out (the nested loop does not know
            # which correlations will match before evaluating them)
            evaluations += cost_level(level.subquery, depth_rows * len(relation))
        return evaluations

    top = db[query.relation.name]
    if query.subquery is None:
        # a bare assert here would vanish under ``python -O``
        raise UserInputError(
            "tis_cost requires a nested query (no subquery level present)"
        )
    return len(top) + cost_level(query.subquery, len(top))


def left_deep_join_order(
    query: Expr, stats: Statistics, budget: "Budget | None" = None
) -> Expr:
    """The classic System-R baseline: exact DP over left-deep trees.

    Bottom-up over a frontier of reachable subsets, extending each by
    one base relation at a time; extensions with no applicable join
    atom (cross products) are deferred System-R style -- a second pass
    admits them only when the atom-connected frontier cannot reach the
    full relation set.  Uses the same shape-independent C_out measure
    as :func:`repro.optimizer.dp.dp_join_order`, so its plans compare
    directly under ``dp_cost``.  This is the baseline the enumeration
    tiers (:mod:`repro.optimizer.tiers`) are benchmarked against.
    """
    from repro.optimizer.dp import _Workspace

    ws = _Workspace(query, stats)
    if len(ws.leaves) < 2:
        return query
    names = sorted(ws.leaves)
    with span("optimize.left_deep"):
        entry = _left_deep(ws, names, budget, allow_cross=False)
        if entry is None:
            entry = _left_deep(ws, names, budget, allow_cross=True)
        if entry is None:  # pragma: no cover - cross pass always completes
            raise EmptyClosureError("left-deep enumeration reached no full plan")
    return entry[1]


def _left_deep(
    ws, names: list[str], budget: "Budget | None", allow_cross: bool
) -> tuple[float, Expr] | None:
    level: dict[frozenset, tuple[float, Expr]] = {
        frozenset((name,)): (0.0, ws.leaves[name]) for name in names
    }
    for _ in range(len(names) - 1):
        nxt: dict[frozenset, tuple[float, Expr]] = {}
        for subset, (cost, plan) in level.items():
            if budget is not None:
                budget.check_deadline("left_deep_join_order")
            s_attrs = ws.attrs_of(subset)
            for name in names:
                if name in subset:
                    continue
                r_attrs = set(ws.leaves[name].all_attrs)
                new_subset = subset | {name}
                new_attrs = ws.attrs_of(new_subset)
                applicable = [
                    atom
                    for atom in ws.atoms
                    if atom.attrs <= new_attrs
                    and atom.attrs & s_attrs
                    and atom.attrs & r_attrs
                ]
                if not applicable and not allow_cross:
                    continue
                new_cost = cost + ws.cardinality(new_subset)
                cur = nxt.get(new_subset)
                if cur is None or new_cost < cur[0]:
                    nxt[new_subset] = (
                        new_cost,
                        Join(
                            JoinKind.INNER,
                            plan,
                            ws.leaves[name],
                            make_conjunction(applicable),
                        ),
                    )
        if not nxt:
            return None
        level = nxt
    return level.get(frozenset(names))
