"""Baselines the paper's contribution is measured against.

* ``as_written`` -- no reordering at all: execute the query in the
  shape the analyst wrote (what a system without outer-join/aggregate
  reordering must do for these queries);
* ``optimize_no_gs`` -- classical reordering only (commutativity and
  the valid associativities), with *no* generalized selection: complex
  predicates and aggregation-referencing predicates freeze the order,
  which is the pre-paper state of the art the introduction describes;
* ``tis_cost`` -- tuple-iteration-semantics cost of a nested
  join-aggregate query (the execution strategy GANS87/MURA92 unnest
  away from): number of predicate evaluations of the nested loops.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime -> optimizer)
    from repro.runtime.budget import Budget

from repro.core.aggregation import pull_up_aggregations
from repro.core.simplify import simplify_outer_joins
from repro.core.transform import enumerate_plans
from repro.core.unnest import NestedCountQuery
from repro.expr.evaluate import Database
from repro.expr.nodes import (
    AdjustPadding,
    Expr,
    GenSelect,
    GroupBy,
    Project,
    Select,
)
from repro.optimizer.cost import CostModel, estimated_cost
from repro.optimizer.planner import OptimizationResult
from repro.optimizer.stats import Statistics
from repro.runtime.tracing import span


def as_written(query: Expr, stats: Statistics) -> float:
    """Cost of executing the query exactly as written."""
    return estimated_cost(query, stats)


def optimize_no_gs(
    query: Expr, stats: Statistics, max_plans: int = 5000
) -> OptimizationResult:
    """Best plan reachable without generalized selection.

    Aggregations stay where they are (pulling them up requires the GS
    deferral for predicates on aggregated columns); the join core is
    reordered with the classical rules only.
    """
    normalized = simplify_outer_joins(query)
    plans = enumerate_plans(normalized, max_plans=max_plans, with_gs=False)
    model = CostModel(stats)
    scored = sorted(
        ((model.cost(plan), i, plan) for i, plan in enumerate(plans)),
        key=lambda t: (t[0], t[1]),
    )
    best_cost, _, best = scored[0]
    return OptimizationResult(
        best=best,
        best_cost=best_cost,
        original_cost=model.cost(query),
        plans_considered=len(plans),
        ranked=[(c, p) for c, _, p in scored[:10]],
    )


#: Hard cap on the classical closure the heuristic may explore; keeps
#: the fallback stage bounded even with no deadline set.
GREEDY_PLAN_CAP = 64


def greedy_reorder(
    query: Expr, stats: Statistics, budget: "Budget | None" = None
) -> OptimizationResult:
    """Bounded-effort heuristic: the degradation ladder's middle rung.

    When the full rewrite closure is too expensive (budget exhausted,
    or the optimizer declined the query), this produces a *good-enough*
    plan cheaply:

    * pure inner-join cores go through the System-R dynamic program
      (:func:`repro.optimizer.dp.dp_join_order`) -- polynomial-ish on
      paper-sized queries and guaranteed to terminate;
    * anything else (outer joins, GS wrappers) falls back to a tiny
      classical closure (``with_gs=False``, capped at
      ``GREEDY_PLAN_CAP`` plans) and picks the cheapest member.

    Either way the result is bag-equivalent to ``query`` -- both
    strategies only apply verified rewrites.
    """
    with span("optimize.greedy"):
        return _greedy_reorder(query, stats, budget)


def _greedy_reorder(
    query: Expr, stats: Statistics, budget: "Budget | None"
) -> OptimizationResult:
    from repro.optimizer.dp import DpError, dp_join_order

    normalized = simplify_outer_joins(query)
    # peel the unary wrapper chain off the join core (same walk as
    # reorder_pipeline, minus the aggregation push-up: no GS here)
    stack: list[Expr] = []
    core: Expr = normalized
    while isinstance(core, (GroupBy, GenSelect, AdjustPadding, Project, Select)):
        stack.append(core)
        core = core.children()[0]
    try:
        ordered = dp_join_order(core, stats, budget=budget)
        best: Expr = ordered
        for wrapper in reversed(stack):
            best = dc_replace(wrapper, child=best)
        plans_considered = 1
    except DpError:
        model = CostModel(stats)
        plans = enumerate_plans(
            normalized, max_plans=GREEDY_PLAN_CAP, with_gs=False, budget=budget
        )
        best = min(
            plans, key=lambda plan: (model.cost(plan), repr(plan))
        )
        plans_considered = len(plans)
    best_cost = estimated_cost(best, stats)
    return OptimizationResult(
        best=best,
        best_cost=best_cost,
        original_cost=estimated_cost(query, stats),
        plans_considered=plans_considered,
        ranked=[(best_cost, best)],
    )


def tis_cost(query: NestedCountQuery, db: Database) -> int:
    """Predicate evaluations performed by tuple iteration semantics."""

    def cost_level(level: NestedCountQuery, depth_rows: int) -> int:
        relation = db[level.relation.name]
        evaluations = depth_rows * len(relation)
        if level.subquery is not None:
            # every (context, row) pair descends into the subquery; we
            # charge the full fan-out (the nested loop does not know
            # which correlations will match before evaluating them)
            evaluations += cost_level(level.subquery, depth_rows * len(relation))
        return evaluations

    top = db[query.relation.name]
    assert query.subquery is not None
    return len(top) + cost_level(query.subquery, len(top))
