"""Interesting-order seeding and the order-aware planning pass.

The Pareto DP (:func:`repro.optimizer.dp.pareto_frontier`) needs to be
told which physical orders are *worth* tracking and how to exploit
attribute equivalences; this module derives both from the query
itself:

* **interesting orders** -- the classical System-R seeding: single-key
  ascending orders on every equi-join key (they enable merge joins),
  the innermost grouping wrapper's keys (they enable streaming
  aggregation), and whatever order the caller requires at the root
  (the query's ORDER BY).

* **equivalence classes** -- union-find over ``Col = Col`` join atoms:
  rows surviving ``a = b`` are ordered on ``b`` whenever they are
  ordered on ``a``, so an order on either attribute satisfies a
  requirement on the other (the functional-dependency "free" orders of
  Szlichta et al., restricted to equality classes).

:func:`order_aware_reorder` is the session-facing pass: peel the unary
wrappers off an already-reordered plan, rebuild each frontier entry
under the same wrappers, and keep the candidate with the lowest
*refined* cost -- C_out plus a hash-grouping surcharge that credits
streaming aggregation (C_out alone is order-blind: it charges a
grouping its output regardless of how the groups are found).  The
original plan is always a candidate, so the pass never degrades the
plan under its own measure.
"""

from __future__ import annotations

from repro.expr.nodes import Expr, GenSelect, GroupBy, Join, Sort
from repro.expr.orderprops import (
    OrderSpec,
    normalize_order,
    order_satisfies,
    provided_order,
    streaming_run_prefix,
)
from repro.expr.predicates import Col, Comparison, conjuncts_of
from repro.expr.rewrite import iter_nodes
from repro.optimizer.cost import CostModel
from repro.optimizer.dp import DpError, pareto_frontier
from repro.optimizer.stats import Statistics


def equality_classes(expr: Expr) -> dict[str, frozenset[str]]:
    """Attribute -> its equivalence class under ``Col = Col`` join atoms.

    Union-find over the equality atoms of every join predicate in
    ``expr``; attributes not mentioned in any such atom are absent
    (their class is implicitly the singleton).
    """
    parent: dict[str, str] = {}

    def find(a: str) -> str:
        root = a
        while parent[root] != root:
            root = parent[root]
        while parent[a] != root:
            parent[a], a = root, parent[a]
        return root

    def union(a: str, b: str) -> None:
        parent.setdefault(a, a)
        parent.setdefault(b, b)
        ra, rb = find(a), find(b)
        if ra != rb:
            # deterministic: smaller name wins the root
            lo, hi = sorted((ra, rb))
            parent[hi] = lo

    for _, node in iter_nodes(expr):
        if isinstance(node, Join):
            for atom in conjuncts_of(node.predicate):
                if (
                    isinstance(atom, Comparison)
                    and atom.op == "="
                    and isinstance(atom.left, Col)
                    and isinstance(atom.right, Col)
                ):
                    union(atom.left.name, atom.right.name)

    classes: dict[str, set[str]] = {}
    for attr in parent:
        classes.setdefault(find(attr), set()).add(attr)
    out: dict[str, frozenset[str]] = {}
    for members in classes.values():
        cls = frozenset(members)
        for attr in members:
            out[attr] = cls
    return out


def interesting_orders(
    core: Expr,
    wrappers=(),
    required: OrderSpec = (),
) -> tuple[OrderSpec, ...]:
    """Order specs worth tracking for ``core`` (deduplicated, stable).

    Seeds, most-specific first: the caller's required root order, the
    innermost grouping wrapper's keys (full key list -- any provided
    prefix of it already streams), and a single-attribute ascending
    order per equi-join key.
    """
    orders: list[OrderSpec] = []
    if required:
        orders.append(normalize_order(required))
    for wrapper in reversed(wrappers):  # innermost wrapper first
        if isinstance(wrapper, GroupBy) and wrapper.group_by:
            orders.append(tuple((a, False) for a in wrapper.group_by))
            break
        if isinstance(wrapper, GenSelect) and wrapper.preserved:
            allowed = None
            for part in wrapper.preserved:
                attrs = frozenset(part.real) | frozenset(part.virtual)
                allowed = attrs if allowed is None else allowed & attrs
            if allowed:
                orders.append(tuple((a, False) for a in sorted(allowed)))
            break
    for _, node in iter_nodes(core):
        if isinstance(node, Join):
            for atom in conjuncts_of(node.predicate):
                if (
                    isinstance(atom, Comparison)
                    and atom.op == "="
                    and isinstance(atom.left, Col)
                    and isinstance(atom.right, Col)
                ):
                    orders.append(((atom.left.name, False),))
                    orders.append(((atom.right.name, False),))
    return tuple(dict.fromkeys(o for o in orders if o))


def refined_cost(expr: Expr, model: CostModel) -> float:
    """C_out plus a hash-grouping surcharge.

    A grouping (or generalized selection) whose input arrives
    clustered on a key prefix streams in one pass; otherwise it builds
    a hash table over its whole input, which this measure charges as
    one extra scan of the input.  Sort enforcers are already charged
    inside :class:`repro.optimizer.cost.CostModel`, so the comparison
    "sort below the grouping vs hash the grouping" is an honest one.
    """
    total = model.cost(expr)
    for _, node in iter_nodes(expr):
        if isinstance(node, GroupBy) and node.group_by:
            run = streaming_run_prefix(provided_order(node.child), node.group_by)
            if not run:
                total += model.estimate(node.child).rows
        elif isinstance(node, GenSelect) and node.preserved:
            allowed = None
            for part in node.preserved:
                attrs = frozenset(part.real) | frozenset(part.virtual)
                allowed = attrs if allowed is None else allowed & attrs
            run = streaming_run_prefix(
                provided_order(node.child), allowed or ()
            )
            if not run:
                total += model.estimate(node.child).rows
    return total


def order_aware_reorder(
    plan: Expr,
    stats: Statistics,
    required: OrderSpec = (),
    budget=None,
) -> Expr:
    """Order-aware refinement of an already-reordered plan.

    Peels the unary wrapper chain, runs the Pareto DP over the
    inner-join core with the seeded interesting orders, rebuilds every
    frontier entry under the same wrappers, enforces ``required`` at
    the root where an entry does not already provide it, and returns
    the candidate minimizing :func:`refined_cost`.  The input plan
    (plus, when needed, a root Sort) is always among the candidates,
    so the result never costs more than the order-blind plan with a
    root enforcer; when the core is not a pure inner-join tree the
    pass degenerates to exactly that root-enforcement step.
    """
    from repro.optimizer.tiers import peel_wrappers, rebuild_wrappers

    required = normalize_order(required)
    wrappers, core = peel_wrappers(plan)
    eq = equality_classes(core)
    candidates: list[Expr] = [plan]
    interesting = interesting_orders(core, wrappers, required)
    if interesting:
        try:
            frontier = pareto_frontier(
                core, stats, interesting, budget=budget, eq=eq
            )
        except DpError:
            frontier = {}
        for order, (_cost, ordered_core) in sorted(
            frontier.items(), key=lambda item: item[0]
        ):
            if order:  # the () entry is the blind plan we already hold
                candidates.append(rebuild_wrappers(wrappers, ordered_core))

    model = CostModel(stats)
    best: tuple[tuple[float, int], Expr] | None = None
    for index, candidate in enumerate(candidates):
        if required and not order_satisfies(
            provided_order(candidate), required, eq
        ):
            if not {a for a, _ in required} <= set(candidate.real_attrs):
                continue  # cannot enforce here; the caller's fallback sorts
            candidate = Sort(candidate, required)
        key = (refined_cost(candidate, model), index)
        if best is None or key < best[0]:
            best = (key, candidate)
    if best is None:
        return plan
    return best[1]
