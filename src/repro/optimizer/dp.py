"""System-R style dynamic programming over connected sub-hypergraphs.

Section 4 proposes embedding the reordering in "the dynamic
programming approach of existing RDBMS optimizers".  This module is
that enumerator for inner-join cores: bottom-up over connected node
subsets, keeping the cheapest plan per subset.

For Bellman optimality the cost of a subset must not depend on the
shape of the subplan that produced it, so the DP uses the classical
*shape-independent* cardinality

    card(S) = Π_{r ∈ S} |r|  ×  Π_{atoms inside S} sel(atom)

and C_out(plan) = Σ card(S) over the plan's internal subsets
(:func:`dp_cost` applies the same measure to any plan, which is how
the tests verify the DP optimum equals the full closure's optimum
exactly).  Predicate atoms are attached to the unique join where their
relations first become available; connectivity uses the hypergraph's
broken-up sub-edges (Definition 3.2 item 3).

A connected subset can still have *no* applicable atom on any split --
a predicate spanning three or more relations keeps the subset
connected through its hyperedge while none of its atoms is evaluable
until every referenced relation is present (the same happens on star
schemas whose written form carries a cross product).  Such subsets
take a cross-product split as a last resort; the atoms attach later,
at the first join where all their relations are available.  Splits
with applicable atoms always win over cross products for the same
subset, so queries that never need the fallback get byte-identical
plans.

:func:`dp_order_subset` exposes the same table-fill over an arbitrary
node subset of a shared workspace/hypergraph pair -- the partitioned
enumeration tier (:mod:`repro.optimizer.tiers`) solves each partition
exactly with it and stitches the results.
"""

from __future__ import annotations

from repro.errors import OptimizerInternalError

from itertools import combinations

from repro.expr.nodes import BaseRel, Expr, Join, JoinKind
from repro.expr.predicates import Predicate, conjuncts_of, make_conjunction
from repro.expr.rewrite import iter_nodes
from repro.hypergraph import hypergraph_of
from repro.optimizer.cardinality import Estimate, estimate, selectivity
from repro.optimizer.stats import Statistics
from repro.runtime.tracing import span


class DpError(OptimizerInternalError):
    """Raised when the query shape is outside the DP's scope."""


class _Workspace:
    """Shared state of one DP run: leaves, atoms, selectivities."""

    def __init__(self, query: Expr, stats: Statistics) -> None:
        self.leaves: dict[str, BaseRel] = {}
        self.atoms: list[Predicate] = []
        for _, node in iter_nodes(query):
            if isinstance(node, Join):
                if node.kind is not JoinKind.INNER:
                    raise DpError("dp_join_order handles inner joins only")
                self.atoms.extend(conjuncts_of(node.predicate))
            elif isinstance(node, BaseRel):
                self.leaves[node.name] = node
            else:
                raise DpError(
                    f"unsupported node {type(node).__name__} in the join core"
                )
        self.stats = stats
        self.base_estimates = {
            name: estimate(rel, stats) for name, rel in self.leaves.items()
        }
        self.owner = {
            attr: name
            for name, rel in self.leaves.items()
            for attr in rel.all_attrs
        }
        merged_distinct: dict[str, float] = {}
        merged_freq: dict = {}
        for est in self.base_estimates.values():
            merged_distinct.update(est.distinct)
            merged_freq.update(est.freq)
        self._global = Estimate(0.0, merged_distinct, merged_freq)
        self.atom_selectivity = {
            atom: selectivity(atom, self._global) for atom in self.atoms
        }

    def attrs_of(self, subset: frozenset[str]) -> set[str]:
        out: set[str] = set()
        for name in subset:
            out.update(self.leaves[name].all_attrs)
        return out

    def cardinality(self, subset: frozenset[str]) -> float:
        """Shape-independent estimated cardinality of joining ``subset``."""
        rows = 1.0
        for name in subset:
            rows *= self.base_estimates[name].rows
        attrs = self.attrs_of(subset)
        for atom in self.atoms:
            if atom.attrs <= attrs:
                rows *= self.atom_selectivity[atom]
        return rows

    def subset_of(self, expr: Expr) -> frozenset[str]:
        return expr.base_names


def dp_join_order(query: Expr, stats: Statistics, budget=None) -> Expr:
    """The cheapest bushy join order for an inner-join query.

    ``query`` must be a tree of inner joins over base relations (outer
    joins go through the transformation pipeline instead); returns an
    equivalent tree minimizing the shape-independent C_out.  An
    optional :class:`repro.runtime.Budget` adds a deadline checkpoint
    per enumerated subset (the table is exponential in the relation
    count, so large queries need one).
    """
    ws = _Workspace(query, stats)
    if len(ws.leaves) < 2:
        return query

    graph = hypergraph_of(query)
    names = frozenset(ws.leaves)

    with span("optimize.dp") as sp:
        entry, masks_expanded = dp_order_subset(ws, graph, names, budget)
        if sp is not None:
            sp.add_counter("masks_expanded", masks_expanded)

    if entry is None:
        raise DpError("query hypergraph is disconnected")
    return entry[1]


def dp_order_subset(
    ws: _Workspace,
    graph,
    names: frozenset[str],
    budget=None,
) -> tuple[tuple[float, Expr] | None, int]:
    """Exact DP over ``names`` (a node subset of ``graph``).

    Fills the classical bottom-up table restricted to ``names`` and
    returns ``((cost, plan), masks_expanded)`` for the full subset, or
    ``(None, masks_expanded)`` when it is unreachable (the induced
    sub-hypergraph is disconnected).  ``ws`` and ``graph`` may cover a
    superset of ``names`` -- the partitioned tier shares one workspace
    across every partition it solves.
    """
    ordered = sorted(names)
    best: dict[frozenset[str], tuple[float, Expr]] = {
        frozenset((name,)): (0.0, ws.leaves[name]) for name in ordered
    }

    bit = graph.node_bit
    masks_expanded = 0
    for size in range(2, len(ordered) + 1):
        for combo in combinations(ordered, size):
            if budget is not None:
                budget.check_deadline("dp_join_order")
            mask = 0
            for name in combo:
                mask |= bit[name]
            if not graph.is_connected_mask(mask):
                continue
            masks_expanded += 1
            subset = frozenset(combo)
            subset_attrs = ws.attrs_of(subset)
            output = ws.cardinality(subset)
            candidate: tuple[float, Expr] | None = None
            for left, right in _splits(subset):
                if left not in best or right not in best:
                    continue
                left_attrs = ws.attrs_of(left)
                right_attrs = ws.attrs_of(right)
                applicable = [
                    atom
                    for atom in ws.atoms
                    if atom.attrs <= subset_attrs
                    and atom.attrs & left_attrs
                    and atom.attrs & right_attrs
                ]
                if not applicable:
                    continue
                cost = best[left][0] + best[right][0] + output
                if candidate is None or cost < candidate[0]:
                    plan = Join(
                        JoinKind.INNER,
                        best[left][1],
                        best[right][1],
                        make_conjunction(applicable),
                    )
                    candidate = (cost, plan)
            if candidate is None:
                # the subset is connected (a hyperedge spans it) yet no
                # split carries an evaluable atom -- e.g. a predicate
                # over three relations with only two of them present.
                # Without a fallback the subset never enters the table
                # and a *connected* query dies with a spurious
                # "disconnected" error; allow the cheapest cross-product
                # split instead, and let the atoms attach at the first
                # join where all their relations are available.
                for left, right in _splits(subset):
                    if left not in best or right not in best:
                        continue
                    cost = best[left][0] + best[right][0] + output
                    if candidate is None or cost < candidate[0]:
                        plan = Join(
                            JoinKind.INNER,
                            best[left][1],
                            best[right][1],
                            make_conjunction(()),
                        )
                        candidate = (cost, plan)
            if candidate is not None:
                best[subset] = candidate

    return best.get(frozenset(ordered)), masks_expanded


def dp_cost(plan: Expr, stats: Statistics) -> float:
    """The DP's own C_out measure applied to an arbitrary inner plan.

    Sum of shape-independent subset cardinalities over the plan's
    internal nodes; lets the tests compare the DP optimum with every
    plan of the transformation closure under one consistent measure.
    """
    ws = _Workspace(plan, stats)
    total = 0.0
    for _, node in iter_nodes(plan):
        if isinstance(node, Join):
            total += ws.cardinality(node.base_names)
    return total


def _splits(subset: frozenset[str]):
    items = sorted(subset)
    anchor = items[0]
    rest = items[1:]
    for size in range(0, len(rest)):
        for combo in combinations(rest, size):
            left = frozenset((anchor,) + combo)
            yield left, subset - left
