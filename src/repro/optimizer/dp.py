"""System-R style dynamic programming over connected sub-hypergraphs.

Section 4 proposes embedding the reordering in "the dynamic
programming approach of existing RDBMS optimizers".  This module is
that enumerator for inner-join cores: bottom-up over connected node
subsets, keeping the cheapest plan per subset.

For Bellman optimality the cost of a subset must not depend on the
shape of the subplan that produced it, so the DP uses the classical
*shape-independent* cardinality

    card(S) = Π_{r ∈ S} |r|  ×  Π_{atoms inside S} sel(atom)

and C_out(plan) = Σ card(S) over the plan's internal subsets
(:func:`dp_cost` applies the same measure to any plan, which is how
the tests verify the DP optimum equals the full closure's optimum
exactly).  Predicate atoms are attached to the unique join where their
relations first become available; connectivity uses the hypergraph's
broken-up sub-edges (Definition 3.2 item 3).

A connected subset can still have *no* applicable atom on any split --
a predicate spanning three or more relations keeps the subset
connected through its hyperedge while none of its atoms is evaluable
until every referenced relation is present (the same happens on star
schemas whose written form carries a cross product).  Such subsets
take a cross-product split as a last resort; the atoms attach later,
at the first join where all their relations are available.  Splits
with applicable atoms always win over cross products for the same
subset, so queries that never need the fallback get byte-identical
plans.

:func:`dp_order_subset` exposes the same table-fill over an arbitrary
node subset of a shared workspace/hypergraph pair -- the partitioned
enumeration tier (:mod:`repro.optimizer.tiers`) solves each partition
exactly with it and stitches the results.
"""

from __future__ import annotations

from repro.errors import OptimizerInternalError

from itertools import combinations

from repro.expr.nodes import BaseRel, Expr, Join, JoinKind, Sort
from repro.expr.orderprops import OrderSpec, normalize_order, order_satisfies
from repro.expr.predicates import Predicate, conjuncts_of, make_conjunction
from repro.expr.rewrite import iter_nodes
from repro.hypergraph import hypergraph_of
from repro.optimizer.cardinality import Estimate, estimate, selectivity
from repro.optimizer.stats import Statistics
from repro.runtime.tracing import span


class DpError(OptimizerInternalError):
    """Raised when the query shape is outside the DP's scope."""


class _Workspace:
    """Shared state of one DP run: leaves, atoms, selectivities."""

    def __init__(self, query: Expr, stats: Statistics) -> None:
        self.leaves: dict[str, BaseRel] = {}
        self.atoms: list[Predicate] = []
        for _, node in iter_nodes(query):
            if isinstance(node, Join):
                if node.kind is not JoinKind.INNER:
                    raise DpError("dp_join_order handles inner joins only")
                self.atoms.extend(conjuncts_of(node.predicate))
            elif isinstance(node, BaseRel):
                self.leaves[node.name] = node
            elif isinstance(node, Sort):
                pass  # order enforcers are transparent to the join core
            else:
                raise DpError(
                    f"unsupported node {type(node).__name__} in the join core"
                )
        self.stats = stats
        self.base_estimates = {
            name: estimate(rel, stats) for name, rel in self.leaves.items()
        }
        self.owner = {
            attr: name
            for name, rel in self.leaves.items()
            for attr in rel.all_attrs
        }
        merged_distinct: dict[str, float] = {}
        merged_freq: dict = {}
        for est in self.base_estimates.values():
            merged_distinct.update(est.distinct)
            merged_freq.update(est.freq)
        self._global = Estimate(0.0, merged_distinct, merged_freq)
        self.atom_selectivity = {
            atom: selectivity(atom, self._global) for atom in self.atoms
        }

    def attrs_of(self, subset: frozenset[str]) -> set[str]:
        out: set[str] = set()
        for name in subset:
            out.update(self.leaves[name].all_attrs)
        return out

    def cardinality(self, subset: frozenset[str]) -> float:
        """Shape-independent estimated cardinality of joining ``subset``."""
        rows = 1.0
        for name in subset:
            rows *= self.base_estimates[name].rows
        attrs = self.attrs_of(subset)
        for atom in self.atoms:
            if atom.attrs <= attrs:
                rows *= self.atom_selectivity[atom]
        return rows

    def subset_of(self, expr: Expr) -> frozenset[str]:
        return expr.base_names


def dp_join_order(query: Expr, stats: Statistics, budget=None) -> Expr:
    """The cheapest bushy join order for an inner-join query.

    ``query`` must be a tree of inner joins over base relations (outer
    joins go through the transformation pipeline instead); returns an
    equivalent tree minimizing the shape-independent C_out.  An
    optional :class:`repro.runtime.Budget` adds a deadline checkpoint
    per enumerated subset (the table is exponential in the relation
    count, so large queries need one).
    """
    ws = _Workspace(query, stats)
    if len(ws.leaves) < 2:
        return query

    graph = hypergraph_of(query)
    names = frozenset(ws.leaves)

    with span("optimize.dp") as sp:
        entry, masks_expanded = dp_order_subset(ws, graph, names, budget)
        if sp is not None:
            sp.add_counter("masks_expanded", masks_expanded)

    if entry is None:
        raise DpError("query hypergraph is disconnected")
    return entry[1]


def dp_order_subset(
    ws: _Workspace,
    graph,
    names: frozenset[str],
    budget=None,
) -> tuple[tuple[float, Expr] | None, int]:
    """Exact DP over ``names`` (a node subset of ``graph``).

    Fills the classical bottom-up table restricted to ``names`` and
    returns ``((cost, plan), masks_expanded)`` for the full subset, or
    ``(None, masks_expanded)`` when it is unreachable (the induced
    sub-hypergraph is disconnected).  ``ws`` and ``graph`` may cover a
    superset of ``names`` -- the partitioned tier shares one workspace
    across every partition it solves.
    """
    ordered = sorted(names)
    best: dict[frozenset[str], tuple[float, Expr]] = {
        frozenset((name,)): (0.0, ws.leaves[name]) for name in ordered
    }

    bit = graph.node_bit
    masks_expanded = 0
    for size in range(2, len(ordered) + 1):
        for combo in combinations(ordered, size):
            if budget is not None:
                budget.check_deadline("dp_join_order")
            mask = 0
            for name in combo:
                mask |= bit[name]
            if not graph.is_connected_mask(mask):
                continue
            masks_expanded += 1
            subset = frozenset(combo)
            subset_attrs = ws.attrs_of(subset)
            output = ws.cardinality(subset)
            candidate: tuple[float, Expr] | None = None
            for left, right in _splits(subset):
                if left not in best or right not in best:
                    continue
                left_attrs = ws.attrs_of(left)
                right_attrs = ws.attrs_of(right)
                applicable = [
                    atom
                    for atom in ws.atoms
                    if atom.attrs <= subset_attrs
                    and atom.attrs & left_attrs
                    and atom.attrs & right_attrs
                ]
                if not applicable:
                    continue
                cost = best[left][0] + best[right][0] + output
                if candidate is None or cost < candidate[0]:
                    plan = Join(
                        JoinKind.INNER,
                        best[left][1],
                        best[right][1],
                        make_conjunction(applicable),
                    )
                    candidate = (cost, plan)
            if candidate is None:
                # the subset is connected (a hyperedge spans it) yet no
                # split carries an evaluable atom -- e.g. a predicate
                # over three relations with only two of them present.
                # Without a fallback the subset never enters the table
                # and a *connected* query dies with a spurious
                # "disconnected" error; allow the cheapest cross-product
                # split instead, and let the atoms attach at the first
                # join where all their relations are available.
                for left, right in _splits(subset):
                    if left not in best or right not in best:
                        continue
                    cost = best[left][0] + best[right][0] + output
                    if candidate is None or cost < candidate[0]:
                        plan = Join(
                            JoinKind.INNER,
                            best[left][1],
                            best[right][1],
                            make_conjunction(()),
                        )
                        candidate = (cost, plan)
            if candidate is not None:
                best[subset] = candidate

    return best.get(frozenset(ordered)), masks_expanded


# ---- Pareto DP over (subset, interesting order) ----------------------
#
# The order-aware extension keeps, per connected subset, not one best
# plan but the Pareto frontier over *physical order*: the cheapest
# plan per order the subset can usefully provide.  Inner hash joins
# pass their left child's order through (the engines emit inner-join
# rows left-major); Sort enforcers add entries for each interesting
# order at every subset, costed with Guravannavar's partial-sort
# discount, so order is bought at the cheapest point in the tree
# rather than always at the root.  The no-order entries replicate the
# blind DP move for move, which is what makes the "never worse than
# blind optimum + root sort" guarantee structural rather than
# empirical.

#: Pareto table entry: order spec -> (cost, plan providing that order).
ParetoEntries = "dict[OrderSpec, tuple[float, Expr]]"


def _real_attrs_of(ws: _Workspace, subset: frozenset[str]) -> set[str]:
    out: set[str] = set()
    for name in subset:
        out.update(ws.leaves[name].attrs)
    return out


def _entry_rank(order: OrderSpec) -> tuple:
    # deterministic strict tie-break: prefer the finer (longer) order,
    # then lexicographic -- makes mutual domination drop exactly one
    return (-len(order), order)


def _prune_dominated(entries, eq) -> None:
    """Drop entries another entry dominates (cheaper-or-equal cost AND
    satisfies the dropped entry's order).  Ties break on
    :func:`_entry_rank`, so equivalent entries never eliminate each
    other simultaneously."""
    items = list(entries.items())
    for o, (c, _plan) in items:
        for o2, (c2, _plan2) in items:
            if o2 == o or o2 not in entries:
                continue
            if (c2, _entry_rank(o2)) < (c, _entry_rank(o)) and order_satisfies(
                o2, o, eq
            ):
                entries.pop(o, None)
                break


def _sort_runs(ws: _Workspace, provided: OrderSpec, target: OrderSpec) -> float:
    """Sorted-run count of ``provided`` input w.r.t. ``target``: the
    product of distinct counts over the matching key prefix."""
    runs = 1.0
    for (p_attr, p_desc), (t_attr, t_desc) in zip(provided, target):
        if p_attr != t_attr or p_desc != t_desc:
            break
        runs *= max(1.0, ws._global.distinct.get(p_attr, 1.0))
    return runs


def _add_enforcers(
    ws: _Workspace,
    subset: frozenset[str],
    entries,
    interesting,
    eq,
) -> None:
    """Extend ``entries`` with the cheapest way to provide each
    applicable interesting order (pass-through when some entry already
    satisfies it, partial/full Sort otherwise)."""
    from repro.optimizer.cost import sort_penalty

    rows = ws.cardinality(subset)
    real_attrs = _real_attrs_of(ws, subset)
    for order in interesting:
        if not order or not {a for a, _ in order} <= real_attrs:
            continue
        best = entries.get(order)
        for have, (cost, plan) in list(entries.items()):
            if order_satisfies(have, order, eq):
                cand_cost, cand_plan = cost, plan
            else:
                runs = min(_sort_runs(ws, have, order), rows or 1.0)
                cand_cost = cost + sort_penalty(rows, runs)
                cand_plan = Sort(plan, order)
            if best is None or cand_cost < best[0]:
                best = (cand_cost, cand_plan)
        if best is not None:
            entries[order] = best


def dp_order_subset_pareto(
    ws: _Workspace,
    graph,
    names: frozenset[str],
    interesting,
    budget=None,
    eq=None,
):
    """Pareto DP over ``names``: cheapest plan per (subset, order).

    ``interesting`` is a collection of order specs worth tracking
    (seeded from join predicates, GROUP BY keys and the query's ORDER
    BY); ``eq`` maps attributes to equality-derived equivalence
    classes for Szlichta-style free orders.  Returns ``(entries,
    masks_expanded)`` where ``entries`` maps order spec -> (cost,
    plan) for the full subset (``None`` when disconnected).  The
    empty-order entries replicate :func:`dp_order_subset` exactly.
    """
    interesting = tuple(
        dict.fromkeys(normalize_order(o) for o in interesting if o)
    )
    ordered = sorted(names)
    table: dict[frozenset[str], dict] = {}
    for name in ordered:
        leaf = frozenset((name,))
        entries = {(): (0.0, ws.leaves[name])}
        _add_enforcers(ws, leaf, entries, interesting, eq)
        _prune_dominated(entries, eq)
        table[leaf] = entries

    bit = graph.node_bit
    masks_expanded = 0
    for size in range(2, len(ordered) + 1):
        for combo in combinations(ordered, size):
            if budget is not None:
                budget.check_deadline("dp_order_pareto")
            mask = 0
            for name in combo:
                mask |= bit[name]
            if not graph.is_connected_mask(mask):
                continue
            masks_expanded += 1
            subset = frozenset(combo)
            subset_attrs = ws.attrs_of(subset)
            output = ws.cardinality(subset)
            entries: dict = {}

            def consider(left, right, applicable) -> None:
                predicate = make_conjunction(applicable)
                for o_left, (c_left, p_left) in table[left].items():
                    for o_right, (c_right, p_right) in table[right].items():
                        cost = c_left + c_right + output
                        held = entries.get(o_left)
                        if held is not None and held[0] <= cost:
                            continue
                        plan = Join(
                            JoinKind.INNER, p_left, p_right, predicate
                        )
                        entries[o_left] = (cost, plan)

            atom_split_found = False
            for left, right in _splits(subset):
                if left not in table or right not in table:
                    continue
                left_attrs = ws.attrs_of(left)
                right_attrs = ws.attrs_of(right)
                applicable = [
                    atom
                    for atom in ws.atoms
                    if atom.attrs <= subset_attrs
                    and atom.attrs & left_attrs
                    and atom.attrs & right_attrs
                ]
                if not applicable:
                    continue
                atom_split_found = True
                consider(left, right, applicable)
            if not atom_split_found:
                # same cross-product last resort as dp_order_subset
                for left, right in _splits(subset):
                    if left not in table or right not in table:
                        continue
                    consider(left, right, ())
            if entries:
                _add_enforcers(ws, subset, entries, interesting, eq)
                _prune_dominated(entries, eq)
                table[subset] = entries

    return table.get(frozenset(ordered)), masks_expanded


def pareto_frontier(
    query: Expr,
    stats: Statistics,
    interesting=(),
    budget=None,
    eq=None,
):
    """The root Pareto frontier of an inner-join core.

    Returns a ``dict`` mapping each surviving order spec to ``(cost,
    plan)``; the ``()`` entry is the order-blind optimum (identical
    plan and cost to :func:`dp_join_order`), and every other entry is
    the cheapest way to additionally provide that order.
    """
    interesting = tuple(
        dict.fromkeys(normalize_order(o) for o in interesting if o)
    )
    ws = _Workspace(query, stats)
    names = frozenset(ws.leaves)
    if len(ws.leaves) < 2:
        entries = {(): (0.0, query)}
        _add_enforcers(ws, names, entries, interesting, eq)
        return entries
    graph = hypergraph_of(query)
    with span("optimize.dp", mode="pareto") as sp:
        entries, masks_expanded = dp_order_subset_pareto(
            ws, graph, names, interesting, budget, eq
        )
        if sp is not None:
            sp.add_counter("masks_expanded", masks_expanded)
    if entries is None:
        raise DpError("query hypergraph is disconnected")
    return entries


def dp_join_order_pareto(
    query: Expr,
    stats: Statistics,
    interesting=(),
    required: OrderSpec = (),
    budget=None,
    eq=None,
) -> tuple[Expr, float]:
    """Order-aware DP over an inner-join core.

    Returns ``(plan, cost)`` where the plan's output satisfies
    ``required`` (when non-empty) and the cost never exceeds the
    order-blind optimum plus a root Sort -- that candidate is always
    in the table, since enforcer entries are added at every subset
    including the root.
    """
    required = normalize_order(required)
    interesting = tuple(interesting) + ((required,) if required else ())
    entries = pareto_frontier(query, stats, interesting, budget, eq)
    if required:
        best = None
        for have, (cost, plan) in entries.items():
            if order_satisfies(have, required, eq):
                if best is None or (cost, _entry_rank(have)) < best[0]:
                    best = ((cost, _entry_rank(have)), plan)
        if best is None:
            # applicability can fail only if the order names unknown attrs
            raise DpError(
                f"required order references attributes outside the query: "
                f"{[a for a, _ in required]}"
            )
        return best[1], best[0][0]
    cost, plan = min(
        ((c, p) for c, p in entries.values()),
        key=lambda t: t[0],
    )
    return plan, cost


def dp_cost(plan: Expr, stats: Statistics) -> float:
    """The DP's own C_out measure applied to an arbitrary inner plan.

    Sum of shape-independent subset cardinalities over the plan's
    internal nodes; lets the tests compare the DP optimum with every
    plan of the transformation closure under one consistent measure.
    """
    ws = _Workspace(plan, stats)
    total = 0.0
    for _, node in iter_nodes(plan):
        if isinstance(node, Join):
            total += ws.cardinality(node.base_names)
    return total


def _splits(subset: frozenset[str]):
    items = sorted(subset)
    anchor = items[0]
    rest = items[1:]
    for size in range(0, len(rest)):
        for combo in combinations(rest, size):
            left = frozenset((anchor,) + combo)
            yield left, subset - left
