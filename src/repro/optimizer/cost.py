"""Plan costing.

``estimated_cost`` is the classical C_out measure: the sum of the
estimated cardinalities of the *materialization-relevant* operators --
joins, group-bys and generalized selections.  Pipelined row-local
operators (selection, projection, rename, padding adjustment) and base
scans are free, as in the standard C_out definition; this is the
measure under which the paper's "keep intermediate results small"
arguments are stated.  The generalized selection is charged its output
plus its input (it scans the child once and probes the preserved
parts), mirroring Section 4's "cost it like MGOJ/GOJ".

``measured_cost`` applies the same formula with *true* cardinalities
(every relevant node actually evaluated) -- ground truth for the
benches, so the reproduction's claims do not depend on our estimator
being good.
"""

from __future__ import annotations

import math

from repro.expr.evaluate import Database, evaluate
from repro.expr.nodes import BaseRel, Expr, GenSelect, GroupBy, Join, Sort
from repro.expr.orderprops import order_satisfies, provided_order
from repro.optimizer.cardinality import Estimate, estimate
from repro.optimizer.stats import Statistics

_COSTED = (Join, GroupBy, GenSelect)


def sort_penalty(rows: float, runs: float = 1.0) -> float:
    """Comparison-count model for enforcing an order on ``rows`` rows.

    A full sort is ``rows·log2(rows)``.  When the input already
    arrives clustered into ``runs`` sorted runs on a key prefix
    (Guravannavar's partial sort), only each run's interior needs
    sorting: ``rows·log2(rows/runs)``, floored at one comparison per
    row so a sort is never free unless it is skipped entirely.
    """
    rows = max(rows, 1.0)
    runs = max(1.0, min(runs, rows))
    return rows * math.log2(max(rows / runs, 2.0))


def sort_node_cost(expr: Sort, child_est: Estimate) -> float:
    """Cost of a :class:`Sort` enforcer given its child's estimate.

    Free when the child already provides the order (the enforcer
    degenerates to a pass-through); otherwise a partial sort whose run
    count is the product of distinct counts over the already-ordered
    key prefix.
    """
    provided = provided_order(expr.child)
    if order_satisfies(provided, expr.keys):
        return 0.0
    runs = 1.0
    for (p_attr, p_desc), (k_attr, k_desc) in zip(provided, expr.keys):
        if p_attr != k_attr or p_desc != k_desc:
            break
        runs *= child_est.distinct_of(p_attr)
    return sort_penalty(child_est.rows, runs)


class CostModel:
    """Memoized C_out costing shared across a whole enumeration.

    Transformation-generated plans overlap almost entirely (each step
    rewrites one join), so caching estimates *and* subtree costs per
    structurally-equal node turns the closure's O(plans x tree) costing
    into roughly O(distinct subtrees).  One instance per (stats,
    enumeration); the caches assume ``stats`` does not change.
    """

    def __init__(self, stats: Statistics) -> None:
        self.stats = stats
        self._estimates: dict[Expr, Estimate] = {}
        self._costs: dict[Expr, float] = {}

    def estimate(self, expr: Expr) -> Estimate:
        return estimate(expr, self.stats, self._estimates)

    def cost(self, expr: Expr) -> float:
        cached = self._costs.get(expr)
        if cached is not None:
            return cached
        total = 0.0
        if isinstance(expr, _COSTED):
            total += self.estimate(expr).rows
        if isinstance(expr, GenSelect):
            total += self.estimate(expr.child).rows
        if isinstance(expr, Sort):
            total += sort_node_cost(expr, self.estimate(expr.child))
        for child in expr.children():
            total += self.cost(child)
        self._costs[expr] = total
        return total


def estimated_cost(expr: Expr, stats: Statistics) -> float:
    """C_out: sum of estimated output sizes of joins / GPs / GSs."""
    return CostModel(stats).cost(expr)


def measured_cost(expr: Expr, db: Database) -> int:
    """C_out with true cardinalities (relevant nodes actually evaluated)."""
    total = 0
    if isinstance(expr, _COSTED):
        total += len(evaluate(expr, db))
    if isinstance(expr, GenSelect):
        total += len(evaluate(expr.child, db))
    for child in expr.children():
        total += measured_cost(child, db)
    return total


def intermediate_sizes(expr: Expr, db: Database) -> list[tuple[str, int]]:
    """(node label, true cardinality) for every node -- for reports."""
    out: list[tuple[str, int]] = []

    def visit(node: Expr) -> None:
        label = type(node).__name__
        if isinstance(node, BaseRel):
            label = f"scan({node.name})"
        out.append((label, len(evaluate(node, db))))
        for child in node.children():
            visit(child)

    visit(expr)
    return out
