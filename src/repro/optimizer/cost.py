"""Plan costing.

``estimated_cost`` is the classical C_out measure: the sum of the
estimated cardinalities of the *materialization-relevant* operators --
joins, group-bys and generalized selections.  Pipelined row-local
operators (selection, projection, rename, padding adjustment) and base
scans are free, as in the standard C_out definition; this is the
measure under which the paper's "keep intermediate results small"
arguments are stated.  The generalized selection is charged its output
plus its input (it scans the child once and probes the preserved
parts), mirroring Section 4's "cost it like MGOJ/GOJ".

``measured_cost`` applies the same formula with *true* cardinalities
(every relevant node actually evaluated) -- ground truth for the
benches, so the reproduction's claims do not depend on our estimator
being good.
"""

from __future__ import annotations

from repro.expr.evaluate import Database, evaluate
from repro.expr.nodes import BaseRel, Expr, GenSelect, GroupBy, Join
from repro.optimizer.cardinality import Estimate, estimate
from repro.optimizer.stats import Statistics

_COSTED = (Join, GroupBy, GenSelect)


class CostModel:
    """Memoized C_out costing shared across a whole enumeration.

    Transformation-generated plans overlap almost entirely (each step
    rewrites one join), so caching estimates *and* subtree costs per
    structurally-equal node turns the closure's O(plans x tree) costing
    into roughly O(distinct subtrees).  One instance per (stats,
    enumeration); the caches assume ``stats`` does not change.
    """

    def __init__(self, stats: Statistics) -> None:
        self.stats = stats
        self._estimates: dict[Expr, Estimate] = {}
        self._costs: dict[Expr, float] = {}

    def estimate(self, expr: Expr) -> Estimate:
        return estimate(expr, self.stats, self._estimates)

    def cost(self, expr: Expr) -> float:
        cached = self._costs.get(expr)
        if cached is not None:
            return cached
        total = 0.0
        if isinstance(expr, _COSTED):
            total += self.estimate(expr).rows
        if isinstance(expr, GenSelect):
            total += self.estimate(expr.child).rows
        for child in expr.children():
            total += self.cost(child)
        self._costs[expr] = total
        return total


def estimated_cost(expr: Expr, stats: Statistics) -> float:
    """C_out: sum of estimated output sizes of joins / GPs / GSs."""
    return CostModel(stats).cost(expr)


def measured_cost(expr: Expr, db: Database) -> int:
    """C_out with true cardinalities (relevant nodes actually evaluated)."""
    total = 0
    if isinstance(expr, _COSTED):
        total += len(evaluate(expr, db))
    if isinstance(expr, GenSelect):
        total += len(evaluate(expr.child, db))
    for child in expr.children():
        total += measured_cost(child, db)
    return total


def intermediate_sizes(expr: Expr, db: Database) -> list[tuple[str, int]]:
    """(node label, true cardinality) for every node -- for reports."""
    out: list[tuple[str, int]] = []

    def visit(node: Expr) -> None:
        label = type(node).__name__
        if isinstance(node, BaseRel):
            label = f"scan({node.name})"
        out.append((label, len(evaluate(node, db))))
        for child in node.children():
            visit(child)

    visit(expr)
    return out
