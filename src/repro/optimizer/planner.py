"""The optimizer: enumerate the reordering space, pick the cheapest.

The paper's Section 4 embeds the enumeration in a System-R style
dynamic program; our enumerator materializes the transformation
closure (memoized, so each distinct plan is generated once) and costs
each plan -- equivalent output, simpler to audit, and small enough at
paper-sized queries (hundreds to a few thousand plans).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime -> optimizer)
    from repro.runtime.budget import Budget

from repro.core.pipeline import reorder_pipeline
from repro.errors import OptimizerInternalError
from repro.expr.nodes import Expr
from repro.optimizer.cost import CostModel
from repro.optimizer.stats import Statistics
from repro.runtime.tracing import add_counter, span


class OptimizerDeclined(OptimizerInternalError):
    """The planner declined the query before doing any work.

    Raised eagerly when ``max_relations`` says the query is too large
    for full closure enumeration -- the caller (the session ladder, or
    a direct API user) should route it to an enumeration tier
    (:mod:`repro.optimizer.tiers`) instead of letting the exponential
    enumeration burn its whole budget first.
    """


@dataclass
class OptimizationResult:
    """The chosen plan plus bookkeeping for reports."""

    best: Expr
    best_cost: float
    original_cost: float
    plans_considered: int
    ranked: list[tuple[float, Expr]]

    @property
    def improvement(self) -> float:
        """original/best cost ratio (>= 1 when optimization helps)."""
        if self.best_cost == 0:
            return 1.0 if self.original_cost == 0 else float("inf")
        return self.original_cost / self.best_cost


def optimize(
    query: Expr,
    stats: Statistics,
    max_plans: int = 5000,
    keep_ranked: int = 10,
    budget: "Budget | None" = None,
    max_relations: int | None = None,
) -> OptimizationResult:
    """Optimize ``query``: normalize, enumerate, cost, pick the minimum.

    With a ``budget``, both the enumeration and the costing loop run
    under cooperative checkpoints and raise the typed
    :class:`repro.errors.BudgetExceeded` family when a cap is hit.
    With ``max_relations``, queries joining more relations than that
    are declined *eagerly* with :class:`OptimizerDeclined` -- full
    closure enumeration is exponential, and a caller with a fallback
    (the session ladder, the enumeration tiers) is better served by an
    instant typed refusal than by a burned budget.
    """
    if max_relations is not None:
        n = len(query.base_names)
        if n > max_relations:
            raise OptimizerDeclined(
                f"query joins {n} relations, above the full-enumeration "
                f"ceiling of {max_relations}"
            )
    with span("optimize.enumerate"):
        plans = reorder_pipeline(query, max_plans=max_plans, budget=budget)
    model = CostModel(stats)
    scored = []
    with span("optimize.cost"):
        for i, plan in enumerate(plans):
            if budget is not None and i % 64 == 0:
                budget.check_deadline("optimize/costing")
            scored.append((model.cost(plan), i, plan))
        add_counter("plans_costed", len(scored))
    scored.sort(key=lambda t: (t[0], t[1]))
    best_cost, _, best = scored[0]
    return OptimizationResult(
        best=best,
        best_cost=best_cost,
        original_cost=model.cost(query),
        plans_considered=len(plans),
        ranked=[(c, p) for c, _, p in scored[:keep_ranked]],
    )
