"""Catalog statistics for cardinality estimation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.expr.evaluate import Database
from repro.relalg.nulls import is_null
from repro.runtime.faults import perturb_factor


@dataclass(frozen=True)
class TableStats:
    """Row count, distinct counts, and optional value frequencies.

    ``frequencies`` maps attribute -> {value: occurrence count}; when
    present, constant-comparison selectivities are computed from the
    actual distribution instead of the uniform 1/distinct guess.
    """

    row_count: int
    distinct: dict[str, int] = field(default_factory=dict)
    frequencies: dict[str, dict] = field(default_factory=dict)

    def distinct_of(self, attr: str) -> int:
        """Distinct count of ``attr`` (default: a tenth of the rows)."""
        if attr in self.distinct:
            return max(1, self.distinct[attr])
        return max(1, self.row_count // 10)


class Statistics:
    """Per-table statistics, keyed by base relation name.

    ``version`` counts mutations: every :meth:`add` bumps it, so
    consumers that cache derived artifacts (notably the plan cache in
    :mod:`repro.runtime.plan_cache`) can key on it and invalidate
    automatically when statistics are refreshed.

    ``feedback`` optionally attaches a
    :class:`repro.runtime.feedback.FeedbackStore`: when present, the
    estimator (:func:`repro.optimizer.cardinality.estimate`) corrects
    its static guesses with the store's observed cardinalities, and
    the runtime composes the store's generation with ``version`` in
    its plan-cache key.
    """

    def __init__(
        self,
        tables: dict[str, TableStats] | None = None,
        feedback=None,
    ) -> None:
        self._tables = dict(tables or {})
        self.version = 0
        self.feedback = feedback

    def add(self, name: str, stats: TableStats) -> None:
        self._tables[name] = stats
        self.version += 1

    def table(self, name: str) -> TableStats:
        stats = self._tables.get(name) or TableStats(row_count=1000)
        # fault injection: an active perturb clause scales the row count
        # the optimizer sees, modelling stale/wrong estimates (the plan
        # may change; correctness must not -- that is the chaos suite's
        # invariant, not the estimator's)
        factor = perturb_factor("stats", name)
        if factor != 1.0:
            return TableStats(
                row_count=max(1, round(stats.row_count * factor)),
                distinct=stats.distinct,
                frequencies=stats.frequencies,
            )
        return stats

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @staticmethod
    def from_database(db: Database) -> "Statistics":
        """Exact statistics (distincts and frequencies) by scanning."""
        from collections import Counter

        stats = Statistics()
        for name in db.names():
            relation = db[name]
            frequencies = {}
            distinct = {}
            for attr in relation.real:
                counter = Counter(
                    row[attr] for row in relation if not is_null(row[attr])
                )
                distinct[attr] = len(counter)
                frequencies[attr] = dict(counter)
            stats.add(name, TableStats(len(relation), distinct, frequencies))
        return stats
