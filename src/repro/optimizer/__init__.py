"""Cost-based optimization over the reordering plan space (Section 4)."""

from repro.optimizer.stats import Statistics, TableStats
from repro.optimizer.cardinality import estimate
from repro.optimizer.cost import estimated_cost, measured_cost
from repro.optimizer.planner import OptimizationResult, optimize
from repro.optimizer.baselines import (
    as_written,
    greedy_reorder,
    optimize_no_gs,
    tis_cost,
)

__all__ = [
    "Statistics",
    "TableStats",
    "estimate",
    "estimated_cost",
    "measured_cost",
    "OptimizationResult",
    "optimize",
    "as_written",
    "greedy_reorder",
    "optimize_no_gs",
    "tis_cost",
]
