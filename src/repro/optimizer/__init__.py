"""Cost-based optimization over the reordering plan space (Section 4)."""

from repro.optimizer.stats import Statistics, TableStats
from repro.optimizer.cardinality import estimate
from repro.optimizer.cost import estimated_cost, measured_cost
from repro.optimizer.dp import dp_join_order_pareto, pareto_frontier
from repro.optimizer.orders import (
    equality_classes,
    interesting_orders,
    order_aware_reorder,
    refined_cost,
)
from repro.optimizer.planner import OptimizationResult, optimize
from repro.optimizer.tiers import (
    choose_tier,
    goo_join_order,
    goo_reorder,
    partitioned_dp_join_order,
    partitioned_reorder,
)
from repro.optimizer.baselines import (
    EmptyClosureError,
    as_written,
    greedy_reorder,
    left_deep_join_order,
    optimize_no_gs,
    tis_cost,
)

__all__ = [
    "Statistics",
    "TableStats",
    "estimate",
    "estimated_cost",
    "measured_cost",
    "OptimizationResult",
    "optimize",
    "dp_join_order_pareto",
    "pareto_frontier",
    "equality_classes",
    "interesting_orders",
    "order_aware_reorder",
    "refined_cost",
    "choose_tier",
    "goo_join_order",
    "goo_reorder",
    "partitioned_dp_join_order",
    "partitioned_reorder",
    "EmptyClosureError",
    "as_written",
    "greedy_reorder",
    "left_deep_join_order",
    "optimize_no_gs",
    "tis_cost",
]
