"""Enumeration tiers between full DP and the greedy closure.

The exact bitset DP (:mod:`repro.optimizer.dp`) is exponential in the
relation count; machine-generated queries at service scale reach 20-60
relations, where full enumeration cannot finish inside any reasonable
budget.  Before this module the degradation ladder jumped straight
from "full closure" to the tiny greedy closure -- an enormous quality
cliff.  Two intermediate tiers smooth it out:

* **GOO** (greedy operator ordering): repeatedly merge the pair of
  clusters whose join has the smallest estimated cardinality,
  preferring connected merges over cross products.  O(n^2 log n) with
  a lazily-invalidated heap; handles hundreds of relations.

* **Partitioned DP**: grow connected partitions of at most
  ``partition_size`` relations along hypergraph edges, solve each
  partition *exactly* with the existing DP table
  (:func:`repro.optimizer.dp.dp_order_subset` over a shared
  workspace), then stitch partition plans with a bounded best-first
  search over inter-partition merges (the Schoenberger & Trummer
  partition-solve-stitch shape, with greedy-rollout best-first search
  standing in for the MILP solver to stay pure python).  A final
  O(n^3) *linearized refinement* runs an interval DP over the
  stitched plan's own leaf order: every binary tree is an interval
  tree of its own leaf order, so the refined plan is never worse than
  the stitched one, and on chain-shaped queries (where connected
  subsets *are* intervals) it recovers the exact bushy optimum --
  which is how this tier beats the System-R left-deep baseline.

Both tiers use the DP's shape-independent cardinality, so their output
is directly comparable to the exact optimum under
:func:`repro.optimizer.dp.dp_cost`, and both only emit inner joins
whose predicates are conjunctions of the query's own atoms -- every
produced plan is bag-equivalent to the input by construction.

Tier *choice* is a policy (:func:`choose_tier` consulting
:class:`repro.runtime.budget.TierThresholds`), applied by the
degradation ladder in :class:`repro.runtime.QuerySession` -- not a
crash path.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, replace as dc_replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime -> optimizer)
    from repro.runtime.budget import Budget

from repro.core.simplify import simplify_outer_joins
from repro.expr.nodes import (
    AdjustPadding,
    Expr,
    GenSelect,
    GroupBy,
    Join,
    JoinKind,
    Project,
    Select,
    Sort,
)
from repro.expr.predicates import make_conjunction
from repro.hypergraph import hypergraph_of
from repro.optimizer.cost import estimated_cost
from repro.optimizer.dp import DpError, _Workspace, dp_order_subset
from repro.optimizer.planner import OptimizationResult
from repro.optimizer.stats import Statistics
from repro.runtime.budget import DEFAULT_TIERS, TierThresholds
from repro.runtime.tracing import span

#: The unary wrappers the reordering tiers peel off the join core, in
#: the order they may legally nest (outermost first during peeling).
WRAPPER_TYPES = (GroupBy, GenSelect, AdjustPadding, Project, Select, Sort)

#: CLI-facing tier names.
TIER_NAMES = ("auto", "dp", "partitioned", "goo")


def peel_wrappers(expr: Expr) -> tuple[list[Expr], Expr]:
    """Split ``expr`` into its unary wrapper chain and the join core.

    Returns ``(stack, core)`` where ``stack`` lists the wrappers
    outermost-first; :func:`rebuild_wrappers` inverts it.
    """
    stack: list[Expr] = []
    core: Expr = expr
    while isinstance(core, WRAPPER_TYPES):
        stack.append(core)
        core = core.children()[0]
    return stack, core


def rebuild_wrappers(stack: list[Expr], core: Expr) -> Expr:
    """Re-wrap a reordered join core in its peeled wrapper chain."""
    out = core
    for wrapper in reversed(stack):
        out = dc_replace(wrapper, child=out)
    return out


def choose_tier(n_relations: int, thresholds: TierThresholds | None = None) -> str:
    """The enumeration tier policy for a join core of ``n_relations``."""
    th = thresholds or DEFAULT_TIERS
    if n_relations <= th.full_max_relations:
        return "dp"
    if n_relations <= th.partitioned_max_relations:
        return "partitioned"
    return "goo"


@dataclass(frozen=True)
class _Cluster:
    """One connected blob of already-joined relations.

    ``cost`` is the accumulated C_out of the cluster's plan under the
    DP's shape-independent measure; ``card`` its output cardinality.
    Clusters partition the leaves, so their attribute sets are
    disjoint and an atom is applied in exactly one cluster -- the one
    whose attributes first cover it.
    """

    subset: frozenset[str]
    attrs: frozenset[str]
    card: float
    cost: float
    expr: Expr


def _leaf_cluster(ws: _Workspace, name: str) -> _Cluster:
    subset = frozenset((name,))
    return _Cluster(
        subset=subset,
        attrs=frozenset(ws.attrs_of(subset)),
        card=ws.cardinality(subset),
        cost=0.0,
        expr=ws.leaves[name],
    )


def _merge_clusters(ws: _Workspace, a: _Cluster, b: _Cluster) -> tuple[_Cluster, bool]:
    """Join two clusters; returns the merged cluster and connectivity.

    The newly-applicable atoms are those covered by the union but by
    neither side alone -- exactly the atoms the DP would attach at
    this join.  The incremental cardinality ``card_a * card_b * prod
    sel(new atoms)`` equals ``ws.cardinality(union)`` because cluster
    attribute sets are disjoint.
    """
    attrs = a.attrs | b.attrs
    new_atoms = [
        atom
        for atom in ws.atoms
        if atom.attrs <= attrs
        and not atom.attrs <= a.attrs
        and not atom.attrs <= b.attrs
    ]
    card = a.card * b.card
    for atom in new_atoms:
        card *= ws.atom_selectivity[atom]
    merged = _Cluster(
        subset=a.subset | b.subset,
        attrs=attrs,
        card=card,
        cost=a.cost + b.cost + card,
        expr=Join(JoinKind.INNER, a.expr, b.expr, make_conjunction(new_atoms)),
    )
    return merged, bool(new_atoms)


def _cluster_sort_key(cluster: _Cluster) -> str:
    return min(cluster.subset)


def goo_join_order(
    query: Expr,
    stats: Statistics,
    budget: "Budget | None" = None,
) -> Expr:
    """Greedy operator ordering for an inner-join core.

    Starts from one cluster per relation and repeatedly merges the
    pair with the smallest resulting cardinality, preferring pairs
    joined by an applicable atom over cross products.  A
    lazily-invalidated heap keeps each step O(n log n) amortized, so
    the whole ordering is O(n^2 log n) -- fast enough for hundreds of
    relations where the DP table cannot even be allocated.
    """
    ws = _Workspace(query, stats)
    if len(ws.leaves) < 2:
        return query
    with span("optimize.goo") as sp:
        cost, plan, merges = _goo(ws, budget)
        if sp is not None:
            sp.add_counter("merges", merges)
    return plan


def _goo(
    ws: _Workspace, budget: "Budget | None"
) -> tuple[float, Expr, int]:
    alive: dict[int, _Cluster] = {}
    for i, name in enumerate(sorted(ws.leaves)):
        alive[i] = _leaf_cluster(ws, name)
    next_id = len(alive)

    seq = itertools.count()
    heap: list[tuple[int, float, str, int, int, int]] = []

    def push_pair(i: int, j: int) -> None:
        merged, connected = _merge_clusters(ws, alive[i], alive[j])
        heapq.heappush(
            heap,
            (0 if connected else 1, merged.card, min(merged.subset), next(seq), i, j),
        )

    ids = sorted(alive)
    for x in range(len(ids)):
        for y in range(x + 1, len(ids)):
            push_pair(ids[x], ids[y])

    merges = 0
    while len(alive) > 1:
        if budget is not None:
            budget.check_deadline("goo_join_order")
        _, _, _, _, i, j = heapq.heappop(heap)
        if i not in alive or j not in alive:
            continue  # a stale pair; one side was merged away
        merged, _ = _merge_clusters(ws, alive[i], alive[j])
        del alive[i]
        del alive[j]
        mid = next_id
        next_id += 1
        alive[mid] = merged
        merges += 1
        for other in list(alive):
            if other != mid:
                push_pair(mid, other)

    (_, final) = alive.popitem()
    return final.cost, final.expr, merges


def _partition_nodes(graph, max_size: int) -> list[frozenset[str]]:
    """Deterministic connected partitions of at most ``max_size`` nodes.

    BFS growth along hyperedges: each partition starts at the smallest
    unassigned name and absorbs adjacent unassigned nodes until full.
    Growing strictly along edges keeps every partition connected in
    the induced sub-hypergraph, so the per-partition DP always reaches
    its full subset.
    """
    adjacency: dict[str, set[str]] = {name: set() for name in graph.nodes}
    for edge in graph.edges:
        members = sorted(edge.nodes)
        for a in members:
            for b in members:
                if a != b:
                    adjacency[a].add(b)

    unassigned = set(graph.nodes)
    parts: list[frozenset[str]] = []
    while unassigned:
        seed = min(unassigned)
        unassigned.discard(seed)
        part = {seed}
        frontier = sorted(adjacency[seed] & unassigned)
        while frontier and len(part) < max_size:
            name = frontier.pop(0)
            if name not in unassigned:
                continue
            unassigned.discard(name)
            part.add(name)
            for nxt in sorted(adjacency[name] & unassigned):
                if nxt not in frontier:
                    frontier.append(nxt)
        parts.append(frozenset(part))
    return parts


def partitioned_dp_join_order(
    query: Expr,
    stats: Statistics,
    budget: "Budget | None" = None,
    thresholds: TierThresholds | None = None,
) -> Expr:
    """Partition-solve-stitch join ordering for an inner-join core.

    The hypergraph is split into connected partitions of at most
    ``thresholds.partition_size`` relations; each partition is solved
    *exactly* with the shared-workspace DP
    (:func:`repro.optimizer.dp.dp_order_subset`), and the partition
    plans are stitched by a bounded best-first search over pairwise
    merges (``stitch_beam`` successors per expansion, at most
    ``stitch_expansions`` expansions, with a greedy rollout scoring
    every visited state so the search is anytime: the result is never
    worse than pure greedy stitching).
    """
    th = thresholds or DEFAULT_TIERS
    ws = _Workspace(query, stats)
    if len(ws.leaves) < 2:
        return query
    graph = hypergraph_of(query)

    with span("optimize.partition") as sp:
        parts = _partition_nodes(graph, th.partition_size)
        clusters: list[_Cluster] = []
        masks_total = 0
        for part in parts:
            if len(part) == 1:
                clusters.append(_leaf_cluster(ws, next(iter(part))))
                continue
            entry, masks = dp_order_subset(ws, graph, part, budget)
            masks_total += masks
            if entry is None:  # pragma: no cover - partitions grow along edges
                raise DpError(f"partition {sorted(part)} is disconnected")
            cost, plan = entry
            clusters.append(
                _Cluster(
                    subset=part,
                    attrs=frozenset(ws.attrs_of(part)),
                    card=ws.cardinality(part),
                    cost=cost,
                    expr=plan,
                )
            )
        cost, plan, expansions = _stitch(
            ws, clusters, budget, th.stitch_beam, th.stitch_expansions
        )
        # refine over three linearizations: the stitched plan's own
        # leaf order (a plan is an interval tree of its own leaf
        # order, so refinement never loses), the hypergraph's BFS
        # order (on chain-shaped graphs this is the chain itself,
        # where interval trees contain the exact bushy optimum), and
        # the GOO plan's leaf order (a globally greedy view, which
        # also makes this tier never worse than the GOO tier).
        _, goo_plan, _ = _goo(ws, budget)
        orders = (_leaf_order(plan), _bfs_order(graph), _leaf_order(goo_plan))
        for order in orders:
            refined_cost, refined = _interval_dp(ws, order, budget)
            if refined_cost < cost:
                cost, plan = refined_cost, refined
        if sp is not None:
            sp.add_counter("partitions", len(parts))
            sp.add_counter("masks_expanded", masks_total)
            sp.add_counter("stitch_expansions", expansions)
    return plan


def _leaf_order(plan: Expr) -> list[str]:
    """Base relation names in the plan's left-to-right leaf order."""
    order: list[str] = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, Join):
            stack.append(node.right)
            stack.append(node.left)
        else:
            order.append(node.name)
    return order


def _bfs_order(graph) -> list[str]:
    """Deterministic BFS traversal of the hypergraph's nodes.

    Keeps edge-adjacent relations close together in the
    linearization, which is what the interval DP needs to find good
    structure; on a pure chain this is the chain order itself.
    """
    adjacency: dict[str, set[str]] = {name: set() for name in graph.nodes}
    for edge in graph.edges:
        members = sorted(edge.nodes)
        for a in members:
            for b in members:
                if a != b:
                    adjacency[a].add(b)
    order: list[str] = []
    visited: set[str] = set()
    pending = sorted(graph.nodes)
    for seed in pending:
        if seed in visited:
            continue
        queue = [seed]
        visited.add(seed)
        while queue:
            name = queue.pop(0)
            order.append(name)
            for nxt in sorted(adjacency[name]):
                if nxt not in visited:
                    visited.add(nxt)
                    queue.append(nxt)
    return order


def _interval_dp(
    ws: _Workspace, order: list[str], budget: "Budget | None"
) -> tuple[float, Expr]:
    """Optimal bushy plan among interval trees of ``order`` -- O(n^3).

    The classical linearized DP: restrict the exact DP to contiguous
    intervals of a fixed relation order, splitting each interval into
    two sub-intervals.  Any binary join tree is an interval tree of
    its own leaf order, so refining a heuristic plan through its
    linearization never makes it worse; on chain hypergraphs (where
    every connected subset is an interval of the chain) the result is
    the exact bushy optimum.  Cross products are allowed implicitly --
    a split with no applicable atom simply contributes no selectivity
    -- so the search space is complete over the given order.
    """
    n = len(order)
    leaf_attrs = [frozenset(ws.attrs_of(frozenset((name,)))) for name in order]
    rows = [ws.base_estimates[name].rows for name in order]

    # attrs[i][j] / card[i][j] for the interval order[i..j], built
    # incrementally: extending by one relation multiplies in its base
    # rows and the selectivities of the newly covered atoms.
    attrs: list[list[frozenset[str]]] = [[frozenset()] * n for _ in range(n)]
    card: list[list[float]] = [[0.0] * n for _ in range(n)]
    for i in range(n):
        a = leaf_attrs[i]
        c = ws.cardinality(frozenset((order[i],)))
        attrs[i][i] = a
        card[i][i] = c
        for j in range(i + 1, n):
            prev = a
            a = a | leaf_attrs[j]
            c *= rows[j]
            for atom in ws.atoms:
                if atom.attrs <= a and not atom.attrs <= prev:
                    c *= ws.atom_selectivity[atom]
            attrs[i][j] = a
            card[i][j] = c

    cost: list[list[float]] = [[0.0] * n for _ in range(n)]
    split: list[list[int]] = [[0] * n for _ in range(n)]
    for length in range(2, n + 1):
        if budget is not None:
            budget.check_deadline("interval-dp")
        for i in range(0, n - length + 1):
            j = i + length - 1
            out = card[i][j]
            best_cost = None
            best_k = i
            for k in range(i, j):
                c = cost[i][k] + cost[k + 1][j] + out
                if best_cost is None or c < best_cost:
                    best_cost = c
                    best_k = k
            cost[i][j] = best_cost
            split[i][j] = best_k

    def build(i: int, j: int) -> Expr:
        if i == j:
            return ws.leaves[order[i]]
        k = split[i][j]
        left = build(i, k)
        right = build(k + 1, j)
        applicable = [
            atom
            for atom in ws.atoms
            if atom.attrs <= attrs[i][j]
            and atom.attrs & attrs[i][k]
            and atom.attrs & attrs[k + 1][j]
        ]
        return Join(JoinKind.INNER, left, right, make_conjunction(applicable))

    return cost[0][n - 1], build(0, n - 1)


def _greedy_rollout(
    ws: _Workspace, state: tuple[_Cluster, ...]
) -> tuple[float, Expr]:
    """Complete ``state`` to one cluster by repeated cheapest merges."""
    clusters = list(state)
    while len(clusters) > 1:
        best = None
        for x in range(len(clusters)):
            for y in range(x + 1, len(clusters)):
                merged, connected = _merge_clusters(ws, clusters[x], clusters[y])
                key = (0 if connected else 1, merged.card, min(merged.subset))
                if best is None or key < best[0]:
                    best = (key, x, y, merged)
        _, x, y, merged = best
        clusters = [c for k, c in enumerate(clusters) if k not in (x, y)]
        clusters.append(merged)
    (final,) = clusters
    return final.cost, final.expr


def _stitch(
    ws: _Workspace,
    clusters: list[_Cluster],
    budget: "Budget | None",
    beam: int,
    max_expansions: int,
) -> tuple[float, Expr, int]:
    """Bounded best-first search over inter-partition merges.

    States are sets of clusters; successors merge one pair, keeping
    the ``beam`` most promising (connected-first, then cardinality).
    Every popped state is greedily rolled out to a complete plan and
    the best rollout is returned -- an anytime search bounded by
    ``max_expansions``, never worse than plain greedy stitching.
    """
    if len(clusters) == 1:
        only = clusters[0]
        return only.cost, only.expr, 0

    seq = itertools.count()
    start = tuple(sorted(clusters, key=_cluster_sort_key))
    heap = [(sum(c.cost for c in start), next(seq), start)]
    seen = {frozenset(c.subset for c in start)}
    best: tuple[float, Expr] | None = None
    expansions = 0

    while heap and expansions < max_expansions:
        if budget is not None:
            budget.check_deadline("partition-stitch")
        total, _, state = heapq.heappop(heap)
        rollout_cost, rollout_plan = _greedy_rollout(ws, state)
        if best is None or rollout_cost < best[0]:
            best = (rollout_cost, rollout_plan)
        if len(state) == 1:
            continue
        expansions += 1
        candidates = []
        for x in range(len(state)):
            for y in range(x + 1, len(state)):
                merged, connected = _merge_clusters(ws, state[x], state[y])
                candidates.append(
                    ((0 if connected else 1, merged.card, min(merged.subset)), x, y, merged)
                )
        candidates.sort(key=lambda t: t[0])
        for _, x, y, merged in candidates[:beam]:
            rest = [c for k, c in enumerate(state) if k not in (x, y)]
            rest.append(merged)
            nxt = tuple(sorted(rest, key=_cluster_sort_key))
            key = frozenset(c.subset for c in nxt)
            if key in seen:
                continue
            seen.add(key)
            heapq.heappush(heap, (sum(c.cost for c in nxt), next(seq), nxt))

    return best[0], best[1], expansions


def _tier_reorder(
    order_core,
    query: Expr,
    stats: Statistics,
) -> OptimizationResult:
    """Shared peel/order/rebuild shell for the tier entry points."""
    normalized = simplify_outer_joins(query)
    stack, core = peel_wrappers(normalized)
    ordered = order_core(core)
    best = rebuild_wrappers(stack, ordered)
    best_cost = estimated_cost(best, stats)
    return OptimizationResult(
        best=best,
        best_cost=best_cost,
        original_cost=estimated_cost(query, stats),
        plans_considered=1,
        ranked=[(best_cost, best)],
    )


def goo_reorder(
    query: Expr,
    stats: Statistics,
    budget: "Budget | None" = None,
) -> OptimizationResult:
    """GOO tier entry point: peel wrappers, order the core greedily.

    Raises :class:`repro.optimizer.dp.DpError` (an
    :class:`repro.errors.OptimizerInternalError`) when the core is not
    a pure inner-join tree -- the ladder then falls through to the
    greedy closure, which handles outer joins.
    """
    return _tier_reorder(
        lambda core: goo_join_order(core, stats, budget=budget), query, stats
    )


def partitioned_reorder(
    query: Expr,
    stats: Statistics,
    budget: "Budget | None" = None,
    thresholds: TierThresholds | None = None,
) -> OptimizationResult:
    """Partitioned-DP tier entry point; same contract as :func:`goo_reorder`."""
    return _tier_reorder(
        lambda core: partitioned_dp_join_order(
            core, stats, budget=budget, thresholds=thresholds
        ),
        query,
        stats,
    )
