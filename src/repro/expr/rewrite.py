"""Structural tree utilities: paths, replacement, reconstruction.

Expression nodes are immutable; rewrites produce new trees.  A *path*
is a tuple of child indices from the root; it addresses a node even
when structurally equal subtrees occur in several places.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.expr.nodes import (
    AdjustPadding,
    Rename,
    SemiJoin,
    UnionAll,
    BaseRel,
    Expr,
    ExprError,
    GenSelect,
    GroupBy,
    Join,
    Project,
    Select,
)

Path = tuple[int, ...]


def node_at(root: Expr, path: Path) -> Expr:
    """The node addressed by ``path``."""
    node = root
    for index in path:
        children = node.children()
        if index >= len(children):
            raise ExprError(f"invalid path {path} at {node!r}")
        node = children[index]
    return node


def with_children(node: Expr, children: tuple[Expr, ...]) -> Expr:
    """Rebuild ``node`` with new children (same arity).

    Constructs directly rather than via ``dataclasses.replace`` -- this
    sits on the enumerator's innermost loop and the replace() field
    introspection is measurable there.
    """
    old = node.children()
    if len(old) != len(children):
        raise ExprError("child count mismatch")
    if isinstance(node, Join):
        return Join(node.kind, children[0], children[1], node.predicate)
    if isinstance(node, SemiJoin):
        return SemiJoin(children[0], children[1], node.predicate, node.anti)
    if isinstance(node, UnionAll):
        return UnionAll(children[0], children[1])
    if isinstance(node, Select):
        return Select(children[0], node.predicate)
    if isinstance(node, Project):
        return Project(children[0], node.attrs, node.distinct)
    if isinstance(node, GroupBy):
        return GroupBy(children[0], node.group_by, node.aggregates, node.name)
    if isinstance(node, GenSelect):
        return GenSelect(children[0], node.predicate, node.preserved)
    if isinstance(node, AdjustPadding):
        return AdjustPadding(children[0], node.witness, node.targets)
    if isinstance(node, Rename):
        return Rename(children[0], node.mapping)
    if isinstance(node, BaseRel):
        return node
    raise ExprError(f"cannot rebuild {type(node).__name__}")


def _respine(node: Expr, children: tuple[Expr, ...]) -> Expr:
    """``with_children`` minus re-validation, for ancestor rebuilds.

    ``replace_at`` swaps one subtree and rebuilds the spine above it.
    Every rewrite rule produces a replacement with the same output
    attribute *set* as the node it replaces, and every ancestor guard
    (predicate scope, attribute disjointness, projection membership)
    is set-based -- so the ancestors stay valid by construction and
    re-running ``__post_init__`` on each spine node is pure overhead
    on the enumerator's hot path.  Nodes are built via ``__new__`` and
    a direct ``__dict__`` fill; derived schemas stay lazy as usual.
    """
    cls = type(node)
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = _FIELD_NAMES[cls] = tuple(cls.__dataclass_fields__)
    src = node.__dict__
    new = object.__new__(cls)
    d = new.__dict__
    # copy only the constructor fields: the old node's lazily-computed
    # caches (schemas, hash) must not leak -- attribute *order* can
    # differ after a child swap even though the sets agree
    for name in names:
        d[name] = src[name]
    if isinstance(node, (Join, SemiJoin, UnionAll)):
        d["left"], d["right"] = children
    else:
        d["child"] = children[0]
    return new


_FIELD_NAMES: dict[type, tuple[str, ...]] = {}


def replace_at(root: Expr, path: Path, new_node: Expr) -> Expr:
    """A copy of ``root`` with the node at ``path`` replaced.

    The replacement must keep the node's output attribute set (true of
    every rewrite rule); ancestors are rebuilt without re-validation.
    """
    if not path:
        return new_node
    children = list(root.children())
    index = path[0]
    children[index] = replace_at(children[index], path[1:], new_node)
    return _respine(root, tuple(children))


def iter_nodes(root: Expr) -> Iterator[tuple[Path, Expr]]:
    """Pre-order traversal yielding (path, node).

    Iterative (explicit stack): the enumerator walks every candidate
    plan, and nested generator frames are measurable there.  The order
    is identical to the recursive formulation.
    """
    stack: list[tuple[Path, Expr]] = [((), root)]
    while stack:
        path, node = stack.pop()
        yield path, node
        children = node.children()
        for i in range(len(children) - 1, -1, -1):
            stack.append((path + (i,), children[i]))


def find_nodes(
    root: Expr, want: Callable[[Expr], bool]
) -> list[tuple[Path, Expr]]:
    return [(p, n) for p, n in iter_nodes(root) if want(n)]


def ancestors_of(root: Expr, path: Path) -> list[tuple[Path, Expr]]:
    """Ancestors of the node at ``path``, outermost first (root first)."""
    out = []
    node = root
    for depth in range(len(path)):
        out.append((path[:depth], node))
        node = node.children()[path[depth]]
    return out


def transform_leaves(
    root: Expr, fn: Callable[[BaseRel], Expr]
) -> Expr:
    """Replace every BaseRel leaf via ``fn``."""
    if isinstance(root, BaseRel):
        return fn(root)
    children = tuple(transform_leaves(c, fn) for c in root.children())
    return with_children(root, children)
