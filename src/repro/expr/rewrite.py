"""Structural tree utilities: paths, replacement, reconstruction.

Expression nodes are immutable; rewrites produce new trees.  A *path*
is a tuple of child indices from the root; it addresses a node even
when structurally equal subtrees occur in several places.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Callable, Iterator

from repro.expr.nodes import (
    AdjustPadding,
    Rename,
    SemiJoin,
    UnionAll,
    BaseRel,
    Expr,
    ExprError,
    GenSelect,
    GroupBy,
    Join,
    Project,
    Select,
)

Path = tuple[int, ...]


def node_at(root: Expr, path: Path) -> Expr:
    """The node addressed by ``path``."""
    node = root
    for index in path:
        children = node.children()
        if index >= len(children):
            raise ExprError(f"invalid path {path} at {node!r}")
        node = children[index]
    return node


def with_children(node: Expr, children: tuple[Expr, ...]) -> Expr:
    """Rebuild ``node`` with new children (same arity)."""
    old = node.children()
    if len(old) != len(children):
        raise ExprError("child count mismatch")
    if isinstance(node, (Join, SemiJoin, UnionAll)):
        return dc_replace(node, left=children[0], right=children[1])
    if isinstance(node, (Select, Project, GroupBy, GenSelect, AdjustPadding, Rename)):
        return dc_replace(node, child=children[0])
    if isinstance(node, BaseRel):
        return node
    raise ExprError(f"cannot rebuild {type(node).__name__}")


def replace_at(root: Expr, path: Path, new_node: Expr) -> Expr:
    """A copy of ``root`` with the node at ``path`` replaced."""
    if not path:
        return new_node
    children = list(root.children())
    index = path[0]
    children[index] = replace_at(children[index], path[1:], new_node)
    return with_children(root, tuple(children))


def iter_nodes(root: Expr) -> Iterator[tuple[Path, Expr]]:
    """Pre-order traversal yielding (path, node)."""

    def walk(node: Expr, path: Path) -> Iterator[tuple[Path, Expr]]:
        yield path, node
        for i, child in enumerate(node.children()):
            yield from walk(child, path + (i,))

    return walk(root, ())


def find_nodes(
    root: Expr, want: Callable[[Expr], bool]
) -> list[tuple[Path, Expr]]:
    return [(p, n) for p, n in iter_nodes(root) if want(n)]


def ancestors_of(root: Expr, path: Path) -> list[tuple[Path, Expr]]:
    """Ancestors of the node at ``path``, outermost first (root first)."""
    out = []
    node = root
    for depth in range(len(path)):
        out.append((path[:depth], node))
        node = node.children()[path[depth]]
    return out


def transform_leaves(
    root: Expr, fn: Callable[[BaseRel], Expr]
) -> Expr:
    """Replace every BaseRel leaf via ``fn``."""
    if isinstance(root, BaseRel):
        return fn(root)
    children = tuple(transform_leaves(c, fn) for c in root.children())
    return with_children(root, children)
