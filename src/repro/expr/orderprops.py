"""Static physical-order properties of logical plans.

An *order spec* is a tuple of ``(attribute, descending)`` pairs, e.g.
``(("age", False), ("name", True))`` for ``ORDER BY age, name DESC``.
:func:`provided_order` answers "what order does evaluating this
subtree yield, in every engine?" and :func:`order_satisfies` answers
"does that order cover a requirement?" -- optionally modulo attribute
equivalence classes, so an order on ``r1.a`` satisfies a requirement
on ``r2.b`` when the plan applied ``r1.a = r2.b`` (Szlichta et al.'s
orders-for-free, restricted to equality-derived classes).

The contract is deliberately conservative: a node claims an order
only when **all three engines** (reference, hash, vector) provably
emit it.  The load-bearing facts, verified against each engine:

* Inner joins emit rows left-major (reference ``join = select ∘
  product``; the row hash join iterates the left input probing a
  right-side table; the vector join gathers left indices ascending),
  so an inner :class:`Join` passes through its *left* child's order.
  Outer joins append pad rows at the end and claim nothing.
* GROUP BY emits groups in first-occurrence order everywhere
  (insertion-ordered dicts), so a :class:`GroupBy` passes through the
  longest child-order prefix that lies inside its group keys.
* σ* (:class:`GenSelect`) and :class:`AdjustPadding` may append or
  rewrite padded rows, so they claim nothing / stop at touched
  attributes respectively.

This module sits in the expr layer and imports nothing above it, so
engines, the physical planner, and the optimizer can all use it
without import cycles.
"""

from __future__ import annotations

from typing import Iterable

from repro.expr.nodes import (
    AdjustPadding,
    BaseRel,
    Expr,
    GenSelect,
    GroupBy,
    Join,
    JoinKind,
    Project,
    Rename,
    Select,
    Sort,
)

#: ((attribute, descending), ...); () means "no promised order".
OrderSpec = tuple[tuple[str, bool], ...]

__all__ = [
    "OrderSpec",
    "provided_order",
    "order_satisfies",
    "streaming_run_prefix",
    "normalize_order",
]


def normalize_order(keys: Iterable[tuple[str, bool]]) -> OrderSpec:
    """Drop repeated attributes (a later key on the same attribute is
    a no-op: ties on the first occurrence are already fully broken by
    it only when values repeat, but re-sorting the same attribute adds
    no information either way)."""
    seen: set[str] = set()
    out: list[tuple[str, bool]] = []
    for attr, descending in keys:
        if attr in seen:
            continue
        seen.add(attr)
        out.append((attr, bool(descending)))
    return tuple(out)


def provided_order(expr: Expr) -> OrderSpec:
    """The order ``expr``'s output rows are guaranteed to carry."""
    if isinstance(expr, Sort):
        return normalize_order(expr.keys)
    if isinstance(expr, Select):
        return provided_order(expr.child)
    if isinstance(expr, Project):
        if expr.distinct:
            return ()  # distinct runs through the grouping machinery
        return _prefix_within(provided_order(expr.child), set(expr.attrs))
    if isinstance(expr, Rename):
        mapping = dict(expr.mapping)
        return tuple(
            (mapping.get(a, a), d) for a, d in provided_order(expr.child)
        )
    if isinstance(expr, Join):
        if expr.kind is JoinKind.INNER:
            return provided_order(expr.left)
        return ()  # outer joins append pad rows at the end
    if isinstance(expr, GroupBy):
        keys = set(expr.group_by) & set(expr.real_attrs)
        return _prefix_within(provided_order(expr.child), keys)
    if isinstance(expr, AdjustPadding):
        # row order survives, but the witness column disappears and the
        # target columns may be rewritten to NULL
        child = provided_order(expr.child)
        stop = set(expr.targets) | {expr.witness}
        out: list[tuple[str, bool]] = []
        for attr, descending in child:
            if attr in stop:
                break
            out.append((attr, descending))
        return tuple(out)
    if isinstance(expr, (GenSelect, BaseRel)):
        return ()
    return ()


def _prefix_within(order: OrderSpec, allowed: set[str]) -> OrderSpec:
    out: list[tuple[str, bool]] = []
    for attr, descending in order:
        if attr not in allowed:
            break
        out.append((attr, descending))
    return tuple(out)


def order_satisfies(
    provided: OrderSpec,
    required: Iterable[tuple[str, bool]],
    eq: "dict[str, frozenset[str]] | None" = None,
) -> bool:
    """True when ``provided`` covers ``required`` position by position.

    ``provided`` may be longer (a finer order satisfies a coarser
    requirement on a shared prefix).  ``eq`` maps an attribute to its
    equality-derived equivalence class; when given, a provided key
    satisfies a required key on any attribute in the same class --
    rows the plan has already filtered through ``a = b`` are sorted on
    ``b`` exactly when sorted on ``a``.
    """
    required = normalize_order(required)
    if len(required) > len(provided):
        return False
    for (p_attr, p_desc), (r_attr, r_desc) in zip(provided, required):
        if p_desc != r_desc:
            return False
        if p_attr == r_attr:
            continue
        if eq is not None and r_attr in eq.get(p_attr, frozenset()):
            continue
        return False
    return True


def streaming_run_prefix(
    order: OrderSpec, allowed_attrs: Iterable[str]
) -> tuple[str, ...]:
    """Run keys usable for streaming over ``order``-sorted input.

    The longest prefix of ``order`` confined to ``allowed_attrs``
    (group keys for streaming aggregation, a preserved spec's real
    attributes for streaming σ*).  Rows agreeing on these attributes
    are contiguous, so a per-run operator flushed at run boundaries is
    bag-equivalent to its hash-table counterpart.  Direction does not
    matter for run detection -- only contiguity does.
    """
    allowed = set(allowed_attrs)
    out: list[str] = []
    for attr, _descending in order:
        if attr not in allowed:
            break
        out.append(attr)
    return tuple(out)
