"""Logical expression tree nodes.

A query is a tree of base relations combined by joins / outer joins /
full outer joins (Section 1.2), generalized projections (GROUP BY) and
generalized selections (Definition 2.1), plus ordinary selections and
projections.  Nodes are immutable and hashable; rewrites build new
trees.

Every node knows its output schema (real and virtual attributes) and
an *owner map* assigning to each output attribute the set of base
relations it derives from.  The owner map is what resolves the paper's
preserved-relation notation (``σ*_p[r1r2](...)``) into concrete
attribute sets, including above aggregations where some attributes
(e.g. ``c = count(r1)``) are derived rather than copied.
"""

from __future__ import annotations

from repro.errors import UserInputError

import enum
from dataclasses import dataclass, field
from typing import Iterable

from repro.expr.caching import cached_property, install_cached_hash

from repro.relalg.aggregates import AggregateSpec
from repro.relalg.relation import virtual_attr
from repro.expr.predicates import Predicate, TRUE


class JoinKind(enum.Enum):
    INNER = "join"
    LEFT = "left outer join"
    RIGHT = "right outer join"
    FULL = "full outer join"

    @property
    def symbol(self) -> str:
        return {
            JoinKind.INNER: "⋈",
            JoinKind.LEFT: "→",
            JoinKind.RIGHT: "←",
            JoinKind.FULL: "↔",
        }[self]

    @property
    def preserves_left(self) -> bool:
        return self in (JoinKind.LEFT, JoinKind.FULL)

    @property
    def preserves_right(self) -> bool:
        return self in (JoinKind.RIGHT, JoinKind.FULL)

    @property
    def is_outer(self) -> bool:
        return self is not JoinKind.INNER


# enum's default __hash__ is a Python-level function; members are
# singletons, so the identity hash is equivalent and C-speed -- join
# kinds are hashed once per freshly built Join during enumeration
JoinKind.__hash__ = object.__hash__  # type: ignore[method-assign]


@dataclass(frozen=True)
class Preserved:
    """A preserved sub-relation argument of a generalized selection."""

    name: str
    real: frozenset[str]
    virtual: frozenset[str]

    def __str__(self) -> str:
        return self.name


class ExprError(UserInputError):
    """Raised on ill-formed expression trees."""


@dataclass(frozen=True)
class Expr:
    """Base class of all logical nodes."""

    def children(self) -> tuple["Expr", ...]:
        return ()

    @cached_property
    def base_names(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for child in self.children():
            out |= child.base_names
        return out

    @cached_property
    def real_attrs(self) -> tuple[str, ...]:
        raise NotImplementedError

    @cached_property
    def virtual_attrs(self) -> tuple[str, ...]:
        raise NotImplementedError

    @cached_property
    def attr_owners(self) -> dict[str, frozenset[str]]:
        """Map output attribute -> set of base relations it derives from."""
        raise NotImplementedError

    @property
    def all_attrs(self) -> tuple[str, ...]:
        return self.real_attrs + self.virtual_attrs

    @cached_property
    def attr_set(self) -> frozenset[str]:
        """All output attributes as a set (the hot-path form of sch)."""
        return frozenset(self.real_attrs) | frozenset(self.virtual_attrs)

    # -- convenience for rewrites --

    def walk(self) -> Iterable["Expr"]:
        """Pre-order traversal of the tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def predicate_relations(self, predicate: Predicate) -> frozenset[str]:
        """The base relations referenced by ``predicate`` in this scope."""
        owners: frozenset[str] = frozenset()
        for attr in predicate.attrs:
            if attr not in self.attr_owners:
                raise ExprError(f"predicate attribute {attr!r} not in scope")
            owners |= self.attr_owners[attr]
        return owners


def _check_predicate_scope(node: Expr, predicate: Predicate) -> None:
    missing = predicate.attrs - node.attr_set
    if missing:
        raise ExprError(
            f"predicate references attributes {sorted(missing)} not in scope"
        )


@dataclass(frozen=True)
class BaseRel(Expr):
    """A base relation reference with its real-attribute schema."""

    name: str
    attrs: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.attrs)) != len(self.attrs):
            raise ExprError(f"duplicate attributes in {self.name!r}")

    @cached_property
    def base_names(self) -> frozenset[str]:
        return frozenset((self.name,))

    @cached_property
    def real_attrs(self) -> tuple[str, ...]:
        return self.attrs

    @cached_property
    def virtual_attrs(self) -> tuple[str, ...]:
        return (virtual_attr(self.name),)

    @cached_property
    def attr_owners(self) -> dict[str, frozenset[str]]:
        owner = frozenset((self.name,))
        out = {a: owner for a in self.attrs}
        out[virtual_attr(self.name)] = owner
        return out


@dataclass(frozen=True)
class Select(Expr):
    """Plain selection σ_p (e.g. a WHERE clause on one relation)."""

    child: Expr
    predicate: Predicate

    def __post_init__(self) -> None:
        _check_predicate_scope(self.child, self.predicate)

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    @cached_property
    def real_attrs(self) -> tuple[str, ...]:
        return self.child.real_attrs

    @cached_property
    def virtual_attrs(self) -> tuple[str, ...]:
        return self.child.virtual_attrs

    @cached_property
    def attr_owners(self) -> dict[str, frozenset[str]]:
        return self.child.attr_owners


@dataclass(frozen=True)
class Project(Expr):
    """Final (bag or distinct) projection onto ``attrs``."""

    child: Expr
    attrs: tuple[str, ...]
    distinct: bool = False

    def __post_init__(self) -> None:
        missing = set(self.attrs) - set(self.child.real_attrs)
        if missing:
            raise ExprError(f"projection attributes {sorted(missing)} not in child")

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    @cached_property
    def real_attrs(self) -> tuple[str, ...]:
        return self.attrs

    @cached_property
    def virtual_attrs(self) -> tuple[str, ...]:
        return () if self.distinct else self.child.virtual_attrs

    @cached_property
    def attr_owners(self) -> dict[str, frozenset[str]]:
        owners = self.child.attr_owners
        return {a: owners[a] for a in self.all_attrs}


@dataclass(frozen=True)
class Join(Expr):
    """Binary (outer) join with a conjunctive predicate."""

    kind: JoinKind
    left: Expr
    right: Expr
    predicate: Predicate

    def __post_init__(self) -> None:
        if self.left.base_names & self.right.base_names:
            raise ExprError(
                "join operands share base relations "
                f"{sorted(self.left.base_names & self.right.base_names)}"
            )
        overlap = self.left.attr_set & self.right.attr_set
        if overlap:
            raise ExprError(f"join operands share attributes {sorted(overlap)}")
        _check_predicate_scope(self, self.predicate)
        tolerant = [a for a in self.predicate.atoms() if not a.null_intolerant]
        if tolerant:
            raise ExprError(
                f"join predicates must be null in-tolerant (footnote 2); "
                f"{tolerant[0]} is not -- apply it in a selection instead"
            )

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    @cached_property
    def real_attrs(self) -> tuple[str, ...]:
        return self.left.real_attrs + self.right.real_attrs

    @cached_property
    def virtual_attrs(self) -> tuple[str, ...]:
        return self.left.virtual_attrs + self.right.virtual_attrs

    @cached_property
    def attr_owners(self) -> dict[str, frozenset[str]]:
        out = dict(self.left.attr_owners)
        out.update(self.right.attr_owners)
        return out


@dataclass(frozen=True)
class SemiJoin(Expr):
    """Semi (``EXISTS``) or anti (``NOT EXISTS``) join.

    Output schema is the left operand's; the right operand only
    filters.  The predicate must be null in-tolerant, like every join
    predicate (footnote 2).  Semi/anti joins sit outside the paper's
    reordering identities and are treated as opaque operators by the
    plan enumerator.
    """

    left: Expr
    right: Expr
    predicate: Predicate
    anti: bool = False

    def __post_init__(self) -> None:
        if self.left.base_names & self.right.base_names:
            raise ExprError("semi-join operands share base relations")
        in_scope = set(self.left.all_attrs) | set(self.right.all_attrs)
        missing = self.predicate.attrs - in_scope
        if missing:
            raise ExprError(
                f"predicate references attributes {sorted(missing)} not in scope"
            )
        tolerant = [a for a in self.predicate.atoms() if not a.null_intolerant]
        if tolerant:
            raise ExprError(
                f"semi-join predicates must be null in-tolerant; {tolerant[0]}"
            )

    def children(self) -> tuple["Expr", ...]:
        return (self.left, self.right)

    @cached_property
    def base_names(self) -> frozenset[str]:
        # only the left side's relations appear in the output, but the
        # right side is still part of the query (for db resolution)
        return self.left.base_names | self.right.base_names

    @cached_property
    def real_attrs(self) -> tuple[str, ...]:
        return self.left.real_attrs

    @cached_property
    def virtual_attrs(self) -> tuple[str, ...]:
        return self.left.virtual_attrs

    @cached_property
    def attr_owners(self) -> dict[str, frozenset[str]]:
        return self.left.attr_owners

    def predicate_relations(self, predicate: Predicate) -> frozenset[str]:
        owners: frozenset[str] = frozenset()
        scope = {**self.left.attr_owners, **self.right.attr_owners}
        for attr in predicate.attrs:
            owners |= scope[attr]
        return owners


@dataclass(frozen=True)
class GroupBy(Expr):
    """Generalized projection π_{X, f(Y)} -- GROUP BY with aggregates.

    ``group_by`` may contain real and virtual attributes of the child
    (the paper's aggregation push-up groups on virtual attributes).
    ``name`` labels the node and its fresh output virtual attribute.
    """

    child: Expr
    group_by: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]
    name: str

    def __post_init__(self) -> None:
        in_scope = self.child.attr_set
        missing = set(self.group_by) - in_scope
        if missing:
            raise ExprError(f"group-by attributes {sorted(missing)} not in child")
        for spec in self.aggregates:
            if spec.arg is not None and spec.arg not in in_scope:
                raise ExprError(f"aggregate argument {spec.arg!r} not in child")

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    @cached_property
    def real_attrs(self) -> tuple[str, ...]:
        child_real = set(self.child.real_attrs)
        keys = tuple(a for a in self.group_by if a in child_real)
        return keys + tuple(spec.output for spec in self.aggregates)

    @cached_property
    def virtual_attrs(self) -> tuple[str, ...]:
        child_virtual = set(self.child.virtual_attrs)
        keys = tuple(a for a in self.group_by if a in child_virtual)
        return keys + (virtual_attr(self.name),)

    @cached_property
    def attr_owners(self) -> dict[str, frozenset[str]]:
        child_owners = self.child.attr_owners
        out = {a: child_owners[a] for a in self.group_by}
        for spec in self.aggregates:
            if spec.arg is None:
                out[spec.output] = self.child.base_names
            else:
                out[spec.output] = child_owners[spec.arg]
        out[virtual_attr(self.name)] = self.child.base_names
        return out


@dataclass(frozen=True)
class GenSelect(Expr):
    """Generalized selection σ*_p[preserved...] -- Definition 2.1."""

    child: Expr
    predicate: Predicate
    preserved: tuple[Preserved, ...] = ()

    def __post_init__(self) -> None:
        _check_predicate_scope(self.child, self.predicate)
        in_scope = self.child.attr_set
        for pres in self.preserved:
            missing = (pres.real | pres.virtual) - in_scope
            if missing:
                raise ExprError(
                    f"preserved {pres.name!r} references {sorted(missing)} "
                    "not in child"
                )

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    @cached_property
    def real_attrs(self) -> tuple[str, ...]:
        return self.child.real_attrs

    @cached_property
    def virtual_attrs(self) -> tuple[str, ...]:
        return self.child.virtual_attrs

    @cached_property
    def attr_owners(self) -> dict[str, frozenset[str]]:
        return self.child.attr_owners


@dataclass(frozen=True)
class UnionAll(Expr):
    """Bag union of union-compatible inputs (Section 1.2's ∪).

    Operands must expose the same real attribute set; the output keeps
    the left operand's column order.  Virtual attributes are the union
    of both sides' (rows are padded with NULL ids for the other side's
    provenance, as in the outer union ⊎).
    """

    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if set(self.left.real_attrs) != set(self.right.real_attrs):
            raise ExprError(
                "union operands must expose the same columns: "
                f"{sorted(self.left.real_attrs)} vs {sorted(self.right.real_attrs)}"
            )
        if self.left.base_names & self.right.base_names:
            raise ExprError("union operands share base relations")

    def children(self) -> tuple["Expr", ...]:
        return (self.left, self.right)

    @cached_property
    def real_attrs(self) -> tuple[str, ...]:
        return self.left.real_attrs

    @cached_property
    def virtual_attrs(self) -> tuple[str, ...]:
        seen = set(self.left.virtual_attrs)
        extra = tuple(
            a for a in self.right.virtual_attrs if a not in seen
        )
        return self.left.virtual_attrs + extra

    @cached_property
    def attr_owners(self) -> dict[str, frozenset[str]]:
        left = self.left.attr_owners
        right = self.right.attr_owners
        out: dict[str, frozenset[str]] = {}
        for attr in self.real_attrs:
            out[attr] = left[attr] | right[attr]
        for attr in self.left.virtual_attrs:
            out[attr] = left[attr]
        for attr in self.right.virtual_attrs:
            out.setdefault(attr, right[attr])
        return out


@dataclass(frozen=True)
class Rename(Expr):
    """Rename real attributes: ``mapping`` is ((old, new), ...).

    Used by the SQL front-end for table aliases and view expansion;
    the algebraic machinery itself always works over globally unique
    attribute names.
    """

    child: Expr
    mapping: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        child_real = set(self.child.real_attrs)
        olds = [old for old, _ in self.mapping]
        news = [new for _, new in self.mapping]
        if len(set(olds)) != len(olds) or len(set(news)) != len(news):
            raise ExprError("rename mapping must be one-to-one")
        missing = set(olds) - child_real
        if missing:
            raise ExprError(f"rename of unknown attributes {sorted(missing)}")
        clashes = (set(news) & child_real) - set(olds)
        if clashes:
            raise ExprError(f"rename targets collide with {sorted(clashes)}")

    def children(self) -> tuple["Expr", ...]:
        return (self.child,)

    @cached_property
    def _map(self) -> dict[str, str]:
        return dict(self.mapping)

    @cached_property
    def real_attrs(self) -> tuple[str, ...]:
        return tuple(self._map.get(a, a) for a in self.child.real_attrs)

    @cached_property
    def virtual_attrs(self) -> tuple[str, ...]:
        return self.child.virtual_attrs

    @cached_property
    def attr_owners(self) -> dict[str, frozenset[str]]:
        owners = self.child.attr_owners
        out = {self._map.get(a, a): owners[a] for a in self.child.real_attrs}
        for a in self.child.virtual_attrs:
            out[a] = owners[a]
        return out


@dataclass(frozen=True)
class AdjustPadding(Expr):
    """Nullify aggregate outputs of padded groups after a GP push-up.

    When a generalized projection is pulled above an outer join, the
    null-supplied pad rows form provenance-free groups whose COUNT is
    0 where the original (lazy) aggregation produced NULL padding --
    the classical COUNT bug.  This node drops the helper ``witness``
    column (a COUNT over a never-null spine row id) and sets every
    ``targets`` attribute to NULL on rows where the witness is 0.
    """

    child: Expr
    witness: str
    targets: tuple[str, ...]

    def __post_init__(self) -> None:
        child_real = set(self.child.real_attrs)
        if self.witness not in child_real:
            raise ExprError(f"witness {self.witness!r} not in child")
        missing = set(self.targets) - child_real
        if missing:
            raise ExprError(f"targets {sorted(missing)} not in child")

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    @cached_property
    def real_attrs(self) -> tuple[str, ...]:
        return tuple(a for a in self.child.real_attrs if a != self.witness)

    @cached_property
    def virtual_attrs(self) -> tuple[str, ...]:
        return self.child.virtual_attrs

    @cached_property
    def attr_owners(self) -> dict[str, frozenset[str]]:
        owners = self.child.attr_owners
        return {a: owners[a] for a in self.all_attrs}


@dataclass(frozen=True)
class Sort(Expr):
    """Order enforcer: emit the child's rows sorted on ``keys``.

    ``keys`` is a tuple of ``(attribute, descending)`` pairs; the
    comparison semantics (NULLS LAST ascending, the numeric/string/
    other type ladder) live in :mod:`repro.relalg.ordering` and are
    shared by every engine.  A Sort is a *physical property* enforcer:
    it changes no bag, only the row order, so it is transparent to
    cardinality estimation and to differential verification.
    """

    child: Expr
    keys: tuple[tuple[str, bool], ...]

    def __post_init__(self) -> None:
        if not self.keys:
            raise ExprError("Sort requires at least one key")
        missing = {a for a, _ in self.keys} - set(self.child.real_attrs)
        if missing:
            raise ExprError(f"sort keys {sorted(missing)} not in child")

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    @cached_property
    def real_attrs(self) -> tuple[str, ...]:
        return self.child.real_attrs

    @cached_property
    def virtual_attrs(self) -> tuple[str, ...]:
        return self.child.virtual_attrs

    @cached_property
    def attr_owners(self) -> dict[str, frozenset[str]]:
        return self.child.attr_owners


# ---- hashing ----
#
# Frozen dataclasses recompute their hash from scratch on every call,
# which makes it O(tree) -- ruinous for the plan enumerator, whose
# closure dedup hashes every candidate tree.  Each node caches its hash
# on first use (the tree is immutable, so the value never changes); a
# child's cached hash makes the parent's first hash O(children).

install_cached_hash(
    BaseRel,
    Select,
    Project,
    Join,
    SemiJoin,
    GroupBy,
    GenSelect,
    UnionAll,
    Rename,
    AdjustPadding,
    Sort,
    Preserved,
)


# ---- convenience constructors ----


def inner(left: Expr, right: Expr, predicate: Predicate = TRUE) -> Join:
    return Join(JoinKind.INNER, left, right, predicate)


def left_outer(left: Expr, right: Expr, predicate: Predicate) -> Join:
    return Join(JoinKind.LEFT, left, right, predicate)


def right_outer(left: Expr, right: Expr, predicate: Predicate) -> Join:
    return Join(JoinKind.RIGHT, left, right, predicate)


def full_outer(left: Expr, right: Expr, predicate: Predicate) -> Join:
    return Join(JoinKind.FULL, left, right, predicate)


def preserved_for(expr: Expr, names: Iterable[str], label: str | None = None) -> Preserved:
    """Resolve the preserved sub-relation of ``expr`` owned by ``names``.

    Collects every output attribute of ``expr`` whose owner set is a
    non-empty subset of ``names`` -- e.g. ``preserved_for(e, {"r1",
    "r2"})`` is the paper's ``r1r2`` argument in ``σ*_p[r1r2](e)``.
    Above a GroupBy this picks up group keys *and* aggregate outputs
    derived from those relations.
    """
    names = frozenset(names)
    unknown = names - expr.base_names
    if unknown:
        raise ExprError(f"preserved names {sorted(unknown)} not in expression")
    real = frozenset(
        a
        for a in expr.real_attrs
        if expr.attr_owners[a] and expr.attr_owners[a] <= names
    )
    virtual = frozenset(
        a
        for a in expr.virtual_attrs
        if expr.attr_owners[a] and expr.attr_owners[a] <= names
    )
    if not real and not virtual:
        raise ExprError(
            f"no attributes of {sorted(names)} survive in the expression"
        )
    return Preserved(label or "".join(sorted(names)), real, virtual)
