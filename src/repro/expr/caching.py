"""Lock-free cached properties and cached hashing for immutable nodes.

Expression and predicate objects are frozen dataclasses: every derived
attribute (schemas, owner maps, ``sch(p)``) is a pure function of the
constructor arguments, so it can be computed once and stored in the
instance ``__dict__``.  ``functools.cached_property`` does the same
thing but (on Python < 3.12) serializes every first access through an
RLock, which is measurable on the enumerator's hot path where millions
of nodes are constructed; this descriptor drops the lock -- safe here
because recomputing a pure value twice under a race is harmless.

``install_cached_hash`` rewrites a frozen dataclass's ``__hash__`` to
cache its value in the instance ``__dict__`` (the same storage trick:
``object.__setattr__``-free, since plain dict assignment bypasses the
frozen guard).  Expression trees are deeply nested and hashed heavily
by the enumerator's dedup dictionaries; without the cache every lookup
re-hashes the whole subtree.
"""

from __future__ import annotations


class cached_property:  # noqa: N801 - drop-in replacement
    """Per-instance memoized property without the stdlib's lock."""

    def __init__(self, func):
        self.func = func
        self.name = func.__name__
        self.__doc__ = func.__doc__

    def __set_name__(self, owner, name):
        self.name = name

    def __get__(self, obj, owner=None):
        if obj is None:
            return self
        value = self.func(obj)
        obj.__dict__[self.name] = value
        return value


def install_cached_hash(*classes) -> None:
    """Give each frozen dataclass an instance-cached ``__hash__``.

    Must run *after* the ``@dataclass`` decorator: the decorator
    regenerates ``__hash__`` per class (``eq=True, frozen=True``), so a
    base-class override would be clobbered in every subclass.
    """
    from dataclasses import fields
    from operator import attrgetter

    for cls in classes:
        names = tuple(f.name for f in fields(cls))
        # attrgetter gathers the field values in C; with several names
        # it returns them as a tuple directly
        get = attrgetter(*names) if len(names) > 1 else attrgetter(names[0])

        def _make(cls=cls, get=get):
            def __hash__(self):
                cached = self.__dict__.get("_hash")
                if cached is None:
                    cached = hash((cls, get(self)))
                    self.__dict__["_hash"] = cached
                return cached

            return __hash__

        cls.__hash__ = _make()
