"""Reference interpreter: logical expression trees -> relations.

This is the ground-truth executor used by the test suite and the
benchmark harness to check that every reordering produces the same
bag of rows.  It evaluates trees bottom-up with the relalg substrate;
no attempt is made to be fast -- correctness is its job.
"""

from __future__ import annotations

from typing import Mapping

from repro.relalg import (
    PreservedSpec,
    Relation,
    full_outer_join,
    generalized_projection,
    generalized_selection,
    join,
    left_outer_join,
    product,
    project,
    right_outer_join,
    select,
)
from repro.relalg.nulls import Truth
from repro.relalg.row import Row
from repro.expr.nodes import (
    AdjustPadding,
    Rename,
    BaseRel,
    Expr,
    ExprError,
    GenSelect,
    GroupBy,
    Join,
    JoinKind,
    Project,
    Select,
    SemiJoin,
    Sort,
    UnionAll,
)
from repro.expr.predicates import Predicate, TRUE
from repro.runtime.faults import fault_point
from repro.runtime.feedback import monitor_lookup, monitor_record
from repro.runtime.metrics import record_engine_counter
from repro.runtime.tracing import add_counter, span, trace_op


class Database:
    """A named collection of base relations."""

    def __init__(self, relations: Mapping[str, Relation] | None = None) -> None:
        self._relations: dict[str, Relation] = dict(relations or {})

    def add(self, name: str, relation: Relation) -> None:
        self._relations[name] = relation

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise ExprError(f"no base relation named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def names(self) -> tuple[str, ...]:
        return tuple(self._relations)


class _PredicateAdapter:
    """Bridge expr predicates to the relalg RowPredicate protocol."""

    __slots__ = ("_predicate",)

    def __init__(self, predicate: Predicate) -> None:
        self._predicate = predicate

    def evaluate(self, row: Row) -> Truth:
        return self._predicate.evaluate(row)

    def __repr__(self) -> str:
        return f"pred({self._predicate})"


def evaluate(expr: Expr, db: Database, budget=None) -> Relation:
    """Evaluate ``expr`` against ``db`` and return the result relation.

    ``budget`` (a :class:`repro.runtime.Budget`) turns every operator
    result into a cooperative checkpoint: the rows it materialized are
    charged against the row cap and the deadline is checked, so a
    runaway intermediate join raises a typed
    :class:`repro.errors.BudgetExceeded` instead of consuming the
    process.
    """
    fault_point("reference", expr)
    cached = monitor_lookup(expr)
    if cached is not None:
        # adaptive resume: already materialized before a re-plan
        return cached
    with trace_op("reference", expr):
        result = _evaluate(expr, db, budget)
        add_counter("rows_out", len(result))
    if budget is not None:
        budget.tick(rows=len(result), where="evaluate")
    monitor_record(expr, len(result), result)
    return result


def _evaluate(expr: Expr, db: Database, budget=None) -> Relation:
    if isinstance(expr, BaseRel):
        relation = db[expr.name]
        if set(relation.real) != set(expr.attrs):
            raise ExprError(
                f"base relation {expr.name!r} has attrs {sorted(relation.real)}, "
                f"expression expects {sorted(expr.attrs)}"
            )
        return relation
    if isinstance(expr, Select):
        return select(evaluate(expr.child, db, budget), _PredicateAdapter(expr.predicate))
    if isinstance(expr, Project):
        child = evaluate(expr.child, db, budget)
        if expr.distinct:
            return project(child, expr.attrs, virtual_attrs=(), distinct=True)
        return project(child, expr.attrs)
    if isinstance(expr, Join):
        left = evaluate(expr.left, db, budget)
        right = evaluate(expr.right, db, budget)
        if expr.kind is JoinKind.INNER and expr.predicate is TRUE:
            return product(left, right)
        pred = _PredicateAdapter(expr.predicate)
        if expr.kind is JoinKind.INNER:
            return join(left, right, pred)
        if expr.kind is JoinKind.LEFT:
            return left_outer_join(left, right, pred)
        if expr.kind is JoinKind.RIGHT:
            return right_outer_join(left, right, pred)
        return full_outer_join(left, right, pred)
    if isinstance(expr, UnionAll):
        from repro.relalg import outer_union

        left = evaluate(expr.left, db, budget)
        right = evaluate(expr.right, db, budget)
        return outer_union(left, right)
    if isinstance(expr, SemiJoin):
        from repro.relalg import anti_join, semi_join

        left = evaluate(expr.left, db, budget)
        right = evaluate(expr.right, db, budget)
        op = anti_join if expr.anti else semi_join
        return op(left, right, _PredicateAdapter(expr.predicate))
    if isinstance(expr, GroupBy):
        child = evaluate(expr.child, db, budget)
        return generalized_projection(
            child, expr.group_by, expr.aggregates, name=expr.name
        )
    if isinstance(expr, GenSelect):
        child = evaluate(expr.child, db, budget)
        specs = [
            PreservedSpec.of(p.name, p.real, p.virtual) for p in expr.preserved
        ]
        return generalized_selection(child, _PredicateAdapter(expr.predicate), specs)
    if isinstance(expr, Sort):
        from repro.relalg.ordering import attr_key_fn, tiebreak_keys

        child = evaluate(expr.child, db, budget)
        with span("sort.enforce", engine="reference"):
            fault_point("sort", op="enforce")
            keys = tiebreak_keys(expr.keys, child.real.attrs)
            rows = sorted(child, key=attr_key_fn(keys))
        record_engine_counter("repro_sort_rows_total", len(rows))
        return child.with_rows(rows)
    if isinstance(expr, Rename):
        from repro.relalg.operators import rename as relalg_rename

        child = evaluate(expr.child, db, budget)
        return relalg_rename(child, dict(expr.mapping))
    if isinstance(expr, AdjustPadding):
        child = evaluate(expr.child, db, budget)
        from repro.relalg.nulls import NULL
        from repro.relalg.schema import Schema

        keep = tuple(a for a in child.real if a != expr.witness) + tuple(
            child.virtual
        )
        rows = []
        for row in child:
            padded_group = row[expr.witness] == 0
            data = {a: row[a] for a in keep}
            if padded_group:
                for target in expr.targets:
                    data[target] = NULL
            rows.append(Row(data))
        real = Schema(a for a in child.real if a != expr.witness)
        return Relation(real, child.virtual, rows)
    raise ExprError(f"cannot evaluate node of type {type(expr).__name__}")
