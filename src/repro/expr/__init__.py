"""Logical query expressions.

Predicates (comparison atoms and conjunctions, Section 1.2), logical
expression trees over the relational-algebra substrate (base
relations, joins, outer joins, generalized selection/projection), a
reference interpreter, and a paper-style pretty printer.
"""

from repro.expr.predicates import (
    Col,
    Comparison,
    Conjunction,
    Const,
    Predicate,
    TRUE,
    conjuncts_of,
    make_conjunction,
)
from repro.expr.nodes import (
    AdjustPadding,
    BaseRel,
    Expr,
    GroupBy,
    Join,
    JoinKind,
    Preserved,
    Project,
    Rename,
    Select,
    GenSelect,
    Sort,
    inner,
    left_outer,
    right_outer,
    full_outer,
    preserved_for,
)
from repro.expr.evaluate import Database, evaluate
from repro.expr.display import to_algebra

__all__ = [
    "AdjustPadding",
    "Rename",
    "Col",
    "Comparison",
    "Conjunction",
    "Const",
    "Predicate",
    "TRUE",
    "conjuncts_of",
    "make_conjunction",
    "BaseRel",
    "Expr",
    "GroupBy",
    "Join",
    "JoinKind",
    "Preserved",
    "Project",
    "Select",
    "GenSelect",
    "Sort",
    "inner",
    "left_outer",
    "right_outer",
    "full_outer",
    "preserved_for",
    "Database",
    "evaluate",
    "to_algebra",
]
