"""Paper-style rendering of expression trees.

``to_algebra`` prints trees with the paper's symbols: ``⋈`` for join,
``→ ← ↔`` for left/right/full outer join, ``σ*_p[preserved](...)``
for generalized selection and ``π_{X, f(Y)}(...)`` for generalized
projection.
"""

from __future__ import annotations

from repro.expr.nodes import (
    AdjustPadding,
    Rename,
    SemiJoin,
    UnionAll,
    BaseRel,
    Expr,
    GenSelect,
    GroupBy,
    Join,
    Project,
    Select,
    Sort,
)
from repro.expr.predicates import TRUE


def _sort_keys(expr: Sort) -> str:
    return ", ".join(f"{a} desc" if d else a for a, d in expr.keys)


def to_algebra(expr: Expr) -> str:
    """Render ``expr`` in the paper's algebraic notation."""
    if isinstance(expr, BaseRel):
        return expr.name
    if isinstance(expr, Select):
        return f"σ[{expr.predicate}]({to_algebra(expr.child)})"
    if isinstance(expr, Project):
        marker = "δ" if expr.distinct else "π"
        attrs = ", ".join(expr.attrs)
        return f"{marker}[{attrs}]({to_algebra(expr.child)})"
    if isinstance(expr, Join):
        if expr.predicate is TRUE:
            op = "×"
        else:
            op = f"{expr.kind.symbol}[{expr.predicate}]"
        return f"({to_algebra(expr.left)} {op} {to_algebra(expr.right)})"
    if isinstance(expr, GroupBy):
        parts = list(expr.group_by)
        parts += [f"{s.output}={s.label()}" for s in expr.aggregates]
        return f"π[{', '.join(parts)}]({to_algebra(expr.child)})"
    if isinstance(expr, GenSelect):
        preserved = ", ".join(p.name for p in expr.preserved)
        return f"σ*[{expr.predicate}][{preserved}]({to_algebra(expr.child)})"
    if isinstance(expr, UnionAll):
        return f"({to_algebra(expr.left)} ∪ {to_algebra(expr.right)})"
    if isinstance(expr, SemiJoin):
        symbol = "▷" if expr.anti else "⋉"
        return (
            f"({to_algebra(expr.left)} {symbol}[{expr.predicate}] "
            f"{to_algebra(expr.right)})"
        )
    if isinstance(expr, Rename):
        pairs = ", ".join(f"{o}→{n}" for o, n in expr.mapping)
        return f"ρ[{pairs}]({to_algebra(expr.child)})"
    if isinstance(expr, AdjustPadding):
        return f"adjust[{expr.witness}]({to_algebra(expr.child)})"
    if isinstance(expr, Sort):
        return f"sort[{_sort_keys(expr)}]({to_algebra(expr.child)})"
    return repr(expr)


def tree_lines(expr: Expr, indent: str = "") -> list[str]:
    """Multi-line indented rendering (one node per line)."""
    label: str
    if isinstance(expr, BaseRel):
        label = expr.name
    elif isinstance(expr, Select):
        label = f"σ[{expr.predicate}]"
    elif isinstance(expr, Project):
        label = f"{'δ' if expr.distinct else 'π'}[{', '.join(expr.attrs)}]"
    elif isinstance(expr, Join):
        pred = "true" if expr.predicate is TRUE else str(expr.predicate)
        label = f"{expr.kind.symbol} [{pred}]"
    elif isinstance(expr, GroupBy):
        aggs = ", ".join(f"{s.output}={s.label()}" for s in expr.aggregates)
        label = f"groupby[{', '.join(expr.group_by)}; {aggs}]"
    elif isinstance(expr, GenSelect):
        preserved = ", ".join(p.name for p in expr.preserved)
        label = f"σ*[{expr.predicate}][{preserved}]"
    elif isinstance(expr, UnionAll):
        label = "∪ all"
    elif isinstance(expr, SemiJoin):
        label = f"{'▷' if expr.anti else '⋉'} [{expr.predicate}]"
    elif isinstance(expr, Rename):
        label = "ρ[" + ", ".join(f"{o}→{n}" for o, n in expr.mapping) + "]"
    elif isinstance(expr, AdjustPadding):
        label = f"adjust[{expr.witness}]"
    elif isinstance(expr, Sort):
        label = f"sort[{_sort_keys(expr)}]"
    else:
        label = repr(expr)
    lines = [indent + label]
    for child in expr.children():
        lines.extend(tree_lines(child, indent + "  "))
    return lines


def to_tree(expr: Expr) -> str:
    return "\n".join(tree_lines(expr))
