"""Predicates: comparison atoms and conjunctions.

The paper assumes every predicate specified with a binary operation is
a conjunction ``p = p1 ∧ p2 ∧ ... ∧ pn`` of null-intolerant atoms
(footnotes 1 and 2).  An atom compares two terms -- attribute columns
or constants -- under one of ``{=, ≠, ≥, ≤, <, >}``.

``sch(p)`` (the set of attributes a predicate references) drives the
simple/complex classification: a predicate is *simple* when it
references exactly two relations, *complex* when more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.expr.caching import cached_property, install_cached_hash
from repro.relalg.nulls import Truth, compare
from repro.relalg.row import Row


class Term:
    """A predicate term: a column reference or a constant."""

    __slots__ = ()

    def value(self, row: Row) -> Any:  # pragma: no cover - interface
        raise NotImplementedError

    @property
    def attrs(self) -> frozenset[str]:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(frozen=True)
class Col(Term):
    """Reference to an attribute by (globally unique) name."""

    name: str

    def value(self, row: Row) -> Any:
        return row[self.name]

    @cached_property
    def attrs(self) -> frozenset[str]:
        return frozenset((self.name,))

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Term):
    """A literal constant."""

    literal: Any

    def value(self, row: Row) -> Any:
        return self.literal

    @property
    def attrs(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return repr(self.literal)


_ARITH_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}


@dataclass(frozen=True)
class Arith(Term):
    """Arithmetic term ``left op right`` with NULL propagation.

    Needed for predicates like the motivating Example 1.1's
    ``QTY < 2 * 95AGGQTY``.
    """

    left: Term
    op: str
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _ARITH_OPS:
            raise ValueError(f"unsupported arithmetic operator {self.op!r}")

    def value(self, row: Row) -> Any:
        from repro.relalg.nulls import NULL, is_null

        a = self.left.value(row)
        b = self.right.value(row)
        if is_null(a) or is_null(b):
            return NULL
        return _ARITH_OPS[self.op](a, b)

    @cached_property
    def attrs(self) -> frozenset[str]:
        return self.left.attrs | self.right.attrs

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


class Predicate:
    """Base class for predicates (three-valued evaluation)."""

    __slots__ = ()

    def evaluate(self, row: Row) -> Truth:  # pragma: no cover - interface
        raise NotImplementedError

    @property
    def attrs(self) -> frozenset[str]:  # pragma: no cover - interface
        """``sch(p)``: the attributes the predicate references."""
        raise NotImplementedError

    def atoms(self) -> tuple["Predicate", ...]:
        """The conjuncts of this predicate (itself, if atomic)."""
        return (self,)

    @property
    def null_intolerant(self) -> bool:
        """True when a NULL in any referenced attribute rejects the row.

        The paper's reordering theory assumes every join predicate is
        null in-tolerant (footnote 2); null-*tolerant* atoms such as
        ``IS NULL`` may only appear in selections above the join
        skeleton, which the SQL translator enforces.
        """
        return True


@dataclass(frozen=True)
class Comparison(Predicate):
    """Atom ``left op right`` with ``op ∈ {=, <>, <, <=, >, >=}``."""

    left: Term
    op: str
    right: Term

    def evaluate(self, row: Row) -> Truth:
        return compare(self.left.value(row), self.op, self.right.value(row))

    @cached_property
    def attrs(self) -> frozenset[str]:
        return self.left.attrs | self.right.attrs

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class IsNull(Predicate):
    """``term IS [NOT] NULL`` -- the null-*tolerant* atom.

    Always evaluates to TRUE or FALSE (never UNKNOWN); because NULLs
    can satisfy it, it may not ride on a join predicate (it would
    break the reordering identities) -- only on selections.
    """

    term: Term
    negated: bool = False

    def evaluate(self, row: Row) -> Truth:
        from repro.relalg.nulls import is_null

        null = is_null(self.term.value(row))
        return Truth.of(null != self.negated)

    @property
    def attrs(self) -> frozenset[str]:
        return self.term.attrs

    @property
    def null_intolerant(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"{self.term} is {'not ' if self.negated else ''}null"


@dataclass(frozen=True)
class InList(Predicate):
    """``term IN (v1, ..., vn)`` over constants; null-intolerant."""

    term: Term
    values: tuple[Any, ...]

    def evaluate(self, row: Row) -> Truth:
        from repro.relalg.nulls import is_null

        value = self.term.value(row)
        if is_null(value):
            return Truth.UNKNOWN
        return Truth.of(any(value == v for v in self.values))

    @property
    def attrs(self) -> frozenset[str]:
        return self.term.attrs

    def __str__(self) -> str:
        inner = ", ".join(repr(v) for v in self.values)
        return f"{self.term} in ({inner})"


@dataclass(frozen=True)
class _TruePredicate(Predicate):
    """The empty conjunction; always TRUE (a cartesian product)."""

    def evaluate(self, row: Row) -> Truth:
        return Truth.TRUE

    @property
    def attrs(self) -> frozenset[str]:
        return frozenset()

    def atoms(self) -> tuple[Predicate, ...]:
        return ()

    def __str__(self) -> str:
        return "true"


TRUE = _TruePredicate()


@dataclass(frozen=True)
class Conjunction(Predicate):
    """``p1 ∧ p2 ∧ ... ∧ pn`` with n >= 2, flattened."""

    conjuncts: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if len(self.conjuncts) < 2:
            raise ValueError("Conjunction needs at least two conjuncts")
        if any(isinstance(c, (Conjunction, _TruePredicate)) for c in self.conjuncts):
            raise ValueError("Conjunction must be flat; use make_conjunction()")

    def evaluate(self, row: Row) -> Truth:
        truth = Truth.TRUE
        for conjunct in self.conjuncts:
            truth = truth.and_(conjunct.evaluate(row))
            if truth is Truth.FALSE:
                return Truth.FALSE
        return truth

    @cached_property
    def attrs(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for conjunct in self.conjuncts:
            out |= conjunct.attrs
        return out

    def atoms(self) -> tuple[Predicate, ...]:
        return self.conjuncts

    def __str__(self) -> str:
        return " ∧ ".join(str(c) for c in self.conjuncts)


# Predicates sit inside every join node, so the expression nodes' hash
# caching (see repro.expr.nodes) only pays off if predicate hashing is
# O(1) too; same trick, same immutability argument.
install_cached_hash(Col, Arith, Comparison, IsNull, InList, Conjunction)


def conjuncts_of(predicate: Predicate) -> tuple[Predicate, ...]:
    """The atomic conjuncts of ``predicate`` (empty for TRUE)."""
    return predicate.atoms()


def make_conjunction(atoms: Iterable[Predicate]) -> Predicate:
    """Build the conjunction of ``atoms``, flattening and simplifying."""
    flat: list[Predicate] = []
    for atom in atoms:
        flat.extend(atom.atoms())
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return Conjunction(tuple(flat))


def substitute(predicate: Predicate, mapping: dict[str, str]) -> Predicate:
    """Rewrite column references according to ``mapping`` (old -> new)."""

    def term(t: Term) -> Term:
        if isinstance(t, Col):
            return Col(mapping.get(t.name, t.name))
        if isinstance(t, Arith):
            return Arith(term(t.left), t.op, term(t.right))
        return t

    def atom(p: Predicate) -> Predicate:
        if isinstance(p, Comparison):
            return Comparison(term(p.left), p.op, term(p.right))
        return p

    return make_conjunction([atom(a) for a in predicate.atoms()]) if predicate.atoms() else predicate


def eq(left: str, right: str) -> Comparison:
    """Shorthand for the ubiquitous column-equality atom."""
    return Comparison(Col(left), "=", Col(right))


def cmp_attr(left: str, op: str, right: str) -> Comparison:
    return Comparison(Col(left), op, Col(right))


def cmp_const(attr: str, op: str, value: Any) -> Comparison:
    return Comparison(Col(attr), op, Const(value))
