"""Association trees -- Definition 3.2 and the BHAR95a baseline.

An association tree for a query hypergraph fixes the order in which
relations are combined (it carries no operators).  Definition 3.2
item 3 is the paper's liberalization: a hyperedge may be *broken up*,
so subsets of its hypernodes may be combined before the hypernodes are
complete -- e.g. ``h2 = ⟨{r2},{r4,r5}⟩`` of Q4 lets ``r2`` combine
with ``r4`` alone.  The BHAR95a Definition 2.3 baseline requires whole
hyperedges, which rules such trees out.

Enumeration is the bottom-up construction Section 4 sketches: start
from single leaves and combine two subtrees whenever the combination
satisfies the definition; counting uses the same recurrence with
memoization over connected node subsets.  Subsets are represented as
bitmasks over the hypergraph's node-index layer, so the connectivity
and combinability checks of the inner loops are integer operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator

from repro.expr.caching import cached_property, install_cached_hash
from repro.hypergraph.hypergraph import Hypergraph


@dataclass(frozen=True)
class AssocLeaf:
    """A single relation."""

    name: str

    @property
    def leaves(self) -> frozenset[str]:
        return frozenset((self.name,))

    @property
    def sort_key(self) -> str:
        return self.name

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class AssocNode:
    """An unordered combination of two subtrees."""

    first: "AssocLeaf | AssocNode"
    second: "AssocLeaf | AssocNode"

    def __post_init__(self) -> None:
        # canonical order makes (A.B) and (B.A) the same tree; the
        # comparison uses the children's *cached* structural keys, so
        # each construction is O(key comparison), not O(subtree) string
        # rebuilding as str()-based ordering would be
        if self.first.sort_key > self.second.sort_key:
            first, second = self.second, self.first
            object.__setattr__(self, "first", first)
            object.__setattr__(self, "second", second)

    @cached_property
    def leaves(self) -> frozenset[str]:
        return self.first.leaves | self.second.leaves

    @cached_property
    def sort_key(self) -> str:
        """Structural key, built once from the children's cached keys.

        Equal to ``str(self)``, so the canonical orientation matches
        the historical string-comparison ordering exactly.
        """
        return f"({self.first.sort_key}.{self.second.sort_key})"

    def __str__(self) -> str:
        return self.sort_key


install_cached_hash(AssocLeaf, AssocNode)


AssocTree = AssocLeaf | AssocNode


def _connected_mask(graph: Hypergraph, mask: int, breakup: bool) -> bool:
    if breakup:
        return graph.is_connected_mask(mask)
    # whole-edge connectivity: only edges with both hypernodes inside
    # the subset participate, and each connects all its nodes
    key = ("whole_conn", mask)
    cached = graph._analysis.get(key)
    if cached is not None:
        return cached
    spans = [
        left | right
        for _, left, right in graph.edge_masks
        if (left | right) & ~mask == 0
    ]
    comp = mask & -mask
    grown = True
    while grown:
        grown = False
        for span in spans:
            if span & comp and span & ~comp:
                comp |= span
                grown = True
    result = comp == mask
    graph._analysis[key] = result
    return result


def _combinable_mask(
    graph: Hypergraph, left: int, right: int, breakup: bool
) -> bool:
    """May subtrees over ``left`` and ``right`` be combined?  (item 3)."""
    if breakup:
        return graph.has_crossing_mask(left, right)
    for _, el, er in graph.edge_masks:
        if (el & ~left == 0 and er & ~right == 0) or (
            el & ~right == 0 and er & ~left == 0
        ):
            return True
    return False


def association_trees(
    graph: Hypergraph, breakup: bool = True
) -> list[AssocTree]:
    """All association trees of ``graph`` (Definition 3.2).

    ``breakup=False`` gives the BHAR95a Definition 2.3 baseline
    (hyperedges must be used whole).
    """
    nodes = graph.node_order
    bit = graph.node_bit
    memo: dict[int, list[AssocTree]] = {
        bit[name]: [AssocLeaf(name)] for name in nodes
    }

    for size in range(2, len(nodes) + 1):
        for combo in combinations(nodes, size):
            mask = 0
            for name in combo:
                mask |= bit[name]
            if not _connected_mask(graph, mask, breakup):
                continue
            trees: list[AssocTree] = []
            seen: set[AssocNode] = set()
            for left, right in _proper_splits_mask(mask):
                left_trees = memo.get(left)
                right_trees = memo.get(right)
                if left_trees is None or right_trees is None:
                    continue
                if not _combinable_mask(graph, left, right, breakup):
                    continue
                for lt in left_trees:
                    for rt in right_trees:
                        node = AssocNode(lt, rt)
                        if node not in seen:
                            seen.add(node)
                            trees.append(node)
            if trees:
                memo[mask] = trees
    return memo.get(graph.all_mask, [])


def count_association_trees(graph: Hypergraph, breakup: bool = True) -> int:
    """Number of association trees, by dynamic programming.

    Counts match ``len(association_trees(...))`` but scale to larger
    hypergraphs (no tree materialization).
    """
    nodes = graph.node_order
    bit = graph.node_bit
    memo: dict[int, int] = {bit[name]: 1 for name in nodes}
    for size in range(2, len(nodes) + 1):
        for combo in combinations(nodes, size):
            mask = 0
            for name in combo:
                mask |= bit[name]
            if not _connected_mask(graph, mask, breakup):
                continue
            total = 0
            for left, right in _proper_splits_mask(mask):
                lc = memo.get(left)
                rc = memo.get(right)
                if lc and rc and _combinable_mask(graph, left, right, breakup):
                    total += lc * rc
            if total:
                memo[mask] = total
    return memo.get(graph.all_mask, 0)


def _proper_splits_mask(mask: int) -> Iterator[tuple[int, int]]:
    """Unordered two-way partitions of ``mask`` (anchor on lowest bit).

    Enumerates the anchor side in the same order as enumerating
    ``combinations`` of the sorted non-anchor names by size, matching
    the historical name-based split order.
    """
    anchor = mask & -mask
    rest_bits = []
    rest = mask ^ anchor
    while rest:
        low = rest & -rest
        rest_bits.append(low)
        rest ^= low
    for size in range(0, len(rest_bits)):
        for combo in combinations(rest_bits, size):
            left = anchor
            for b in combo:
                left |= b
            right = mask ^ left
            if right:
                yield left, right
