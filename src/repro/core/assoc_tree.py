"""Association trees -- Definition 3.2 and the BHAR95a baseline.

An association tree for a query hypergraph fixes the order in which
relations are combined (it carries no operators).  Definition 3.2
item 3 is the paper's liberalization: a hyperedge may be *broken up*,
so subsets of its hypernodes may be combined before the hypernodes are
complete -- e.g. ``h2 = ⟨{r2},{r4,r5}⟩`` of Q4 lets ``r2`` combine
with ``r4`` alone.  The BHAR95a Definition 2.3 baseline requires whole
hyperedges, which rules such trees out.

Enumeration is the bottom-up construction Section 4 sketches: start
from single leaves and combine two subtrees whenever the combination
satisfies the definition; counting uses the same recurrence with
memoization over connected node subsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from itertools import combinations
from typing import Iterator

from repro.hypergraph.hypergraph import Hypergraph


@dataclass(frozen=True)
class AssocLeaf:
    """A single relation."""

    name: str

    @property
    def leaves(self) -> frozenset[str]:
        return frozenset((self.name,))

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class AssocNode:
    """An unordered combination of two subtrees."""

    first: "AssocLeaf | AssocNode"
    second: "AssocLeaf | AssocNode"

    def __post_init__(self) -> None:
        # canonical order makes (A.B) and (B.A) the same tree
        if str(self.first) > str(self.second):
            first, second = self.second, self.first
            object.__setattr__(self, "first", first)
            object.__setattr__(self, "second", second)

    @cached_property
    def leaves(self) -> frozenset[str]:
        return self.first.leaves | self.second.leaves

    def __str__(self) -> str:
        return f"({self.first}.{self.second})"


AssocTree = AssocLeaf | AssocNode


def _connected(graph: Hypergraph, subset: frozenset[str], breakup: bool) -> bool:
    if breakup:
        return graph.is_connected(within=subset)
    # whole-edge connectivity: only edges with both hypernodes inside
    sub_edges = [
        e for e in graph.edges if e.left <= subset and e.right <= subset
    ]
    return Hypergraph(subset, sub_edges).is_connected()


def _combinable(
    graph: Hypergraph,
    left: frozenset[str],
    right: frozenset[str],
    breakup: bool,
) -> bool:
    """May subtrees over ``left`` and ``right`` be combined?  (item 3)."""
    if breakup:
        return bool(graph.crossing_edges(left, right))
    for edge in graph.edges:
        if (edge.left <= left and edge.right <= right) or (
            edge.left <= right and edge.right <= left
        ):
            return True
    return False


def association_trees(
    graph: Hypergraph, breakup: bool = True
) -> list[AssocTree]:
    """All association trees of ``graph`` (Definition 3.2).

    ``breakup=False`` gives the BHAR95a Definition 2.3 baseline
    (hyperedges must be used whole).
    """
    nodes = sorted(graph.nodes)
    memo: dict[frozenset[str], list[AssocTree]] = {}
    for name in nodes:
        memo[frozenset((name,))] = [AssocLeaf(name)]

    universe = list(nodes)
    for size in range(2, len(universe) + 1):
        for combo in combinations(universe, size):
            subset = frozenset(combo)
            if not _connected(graph, subset, breakup):
                continue
            trees: list[AssocTree] = []
            seen: set[str] = set()
            for split in _proper_splits(subset):
                left, right = split
                if left not in memo or right not in memo:
                    continue
                if not _combinable(graph, left, right, breakup):
                    continue
                for lt in memo[left]:
                    for rt in memo[right]:
                        node = AssocNode(lt, rt)
                        key = str(node)
                        if key not in seen:
                            seen.add(key)
                            trees.append(node)
            if trees:
                memo[subset] = trees
    return memo.get(frozenset(graph.nodes), [])


def count_association_trees(graph: Hypergraph, breakup: bool = True) -> int:
    """Number of association trees, by dynamic programming.

    Counts match ``len(association_trees(...))`` but scale to larger
    hypergraphs (no tree materialization).
    """
    nodes = sorted(graph.nodes)
    memo: dict[frozenset[str], int] = {
        frozenset((n,)): 1 for n in nodes
    }
    for size in range(2, len(nodes) + 1):
        for combo in combinations(nodes, size):
            subset = frozenset(combo)
            if not _connected(graph, subset, breakup):
                continue
            total = 0
            for left, right in _proper_splits(subset):
                if left in memo and right in memo:
                    if _combinable(graph, left, right, breakup):
                        total += memo[left] * memo[right]
            if total:
                memo[subset] = total
    return memo.get(frozenset(graph.nodes), 0)


def _proper_splits(
    subset: frozenset[str],
) -> Iterator[tuple[frozenset[str], frozenset[str]]]:
    """Unordered two-way partitions of ``subset``."""
    items = sorted(subset)
    anchor = items[0]
    rest = items[1:]
    for size in range(0, len(rest)):
        for combo in combinations(rest, size):
            left = frozenset((anchor,) + combo)
            right = subset - left
            if right:
                yield left, right
