"""Unnesting correlated join-aggregate queries (Section 1.1).

The paper's motivating class (GANS87, MURA92): correlated, possibly
multiply nested COUNT subqueries,

    SELECT r1.a FROM r1
    WHERE r1.b θ1 (SELECT count(*) FROM r2
                   WHERE r2.c = r1.c
                     AND r2.d θ2 (SELECT count(*) FROM r3
                                  WHERE r2.e = r3.e AND r1.f = r3.f))

Tuple iteration semantics (TIS) executes this as nested loops;
:func:`execute_tis` is the reference implementation.  :func:`unnest`
builds the paper's Query 2 / Query 3 rewriting: a chain of left outer
joins, a generalized projection per nesting level, and -- where the
paper's printed form would hit the COUNT bug (a filter on an
aggregated column must not lose the preserved outer rows) -- a
generalized selection preserving the outer side, which is exactly the
role the paper introduces GS for.

Note the innermost correlation ``r2.e = r3.e AND r1.f = r3.f`` is a
*complex predicate* (it references three relations): once unnested,
reordering the outer joins requires the paper's machinery, which is
what bench X5 exercises.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.expr.evaluate import Database
from repro.expr.nodes import (
    BaseRel,
    Expr,
    GenSelect,
    GroupBy,
    Join,
    JoinKind,
    Project,
    Select,
    preserved_for,
)
from repro.expr.predicates import (
    Col,
    Comparison,
    Predicate,
    conjuncts_of,
)
from repro.relalg.aggregates import AggregateSpec, AggregateFunction
from repro.relalg.nulls import Truth, compare
from repro.relalg.relation import Relation, virtual_attr
from repro.relalg.row import Row


@dataclass(frozen=True)
class NestedCountQuery:
    """One nesting level of a correlated COUNT query.

    The level contributes ``WHERE <compare_attr> θ count(<subquery>)``
    filtered additionally by ``correlation`` (a conjunction that may
    reference attributes of *any* enclosing level's relation).  The
    outermost level carries the SELECT list.
    """

    relation: BaseRel
    correlation: Predicate | None
    compare_attr: str
    theta: str
    subquery: "NestedCountQuery | None"
    select_attrs: tuple[str, ...] = ()

    def levels(self) -> list["NestedCountQuery"]:
        out: list[NestedCountQuery] = [self]
        node = self
        while node.subquery is not None:
            node = node.subquery
            out.append(node)
        return out


def execute_tis(query: NestedCountQuery, db: Database) -> Relation:
    """Reference executor: literal tuple iteration semantics."""

    def count_level(level: NestedCountQuery, context: Row) -> int:
        relation = db[level.relation.name]
        total = 0
        for row in relation:
            merged = Row({**context, **row})
            if level.correlation is not None:
                if level.correlation.evaluate(merged) is not Truth.TRUE:
                    continue
            if level.subquery is None:
                total += 1
            else:
                sub = count_level(level.subquery, merged)
                if compare(merged[level.compare_attr], level.theta, sub) is Truth.TRUE:
                    total += 1
        return total

    top = db[query.relation.name]
    assert query.subquery is not None, "top level needs a subquery"
    rows = []
    for row in top:
        sub = count_level(query.subquery, row)
        if compare(row[query.compare_attr], query.theta, sub) is Truth.TRUE:
            rows.append(row.project(query.select_attrs))
    real = [a for a in query.select_attrs if a in top.real]
    return Relation(real, [a for a in query.select_attrs if a not in top.real], rows)


def unnest(query: NestedCountQuery) -> Expr:
    """The Ganski/Muralikrishna rewriting (the paper's Queries 2-3).

    Builds the left-outer-join chain over all levels, then collapses
    the nesting from the innermost level outward: a generalized
    projection counts the level's row ids, a generalized selection
    applies the level's θ-filter while *preserving* the outer prefix
    (the COUNT-bug-proof form of the paper's HAVING), and the final
    level ends in a plain selection and projection.
    """
    levels = query.levels()
    if len(levels) < 2:
        raise ValueError("nothing to unnest: no subquery")

    # chain of left outer joins, outermost first
    chain: Expr = levels[0].relation
    for level in levels[1:]:
        assert level.correlation is not None
        chain = Join(JoinKind.LEFT, chain, level.relation, level.correlation)

    expr = chain
    # collapse from the innermost level to level 1
    for depth in range(len(levels) - 1, 0, -1):
        outer_levels = levels[:depth]
        level = levels[depth]
        group_keys: list[str] = []
        for outer in outer_levels:
            group_keys.extend(outer.relation.attrs)
        # group also on surviving virtual ids of the outer prefix
        virtuals = [
            virtual_attr(outer.relation.name)
            for outer in outer_levels
            if virtual_attr(outer.relation.name) in expr.virtual_attrs
        ]
        cnt_attr = f"cnt_{level.relation.name}"
        expr = GroupBy(
            expr,
            tuple(group_keys) + tuple(virtuals),
            (
                AggregateSpec(
                    cnt_attr,
                    AggregateFunction.COUNT,
                    virtual_attr(level.relation.name),
                ),
            ),
            f"unnest_{level.relation.name}",
        )
        parent = outer_levels[-1]
        test = Comparison(Col(parent.compare_attr), parent.theta, Col(cnt_attr))
        if depth > 1:
            # Rows failing the θ-test must drop the *parent* tuple (it
            # must not count at the next level) while the enclosing
            # prefix survives null-padded -- the COUNT-bug-proof form;
            # preserving the prefix is exactly what GS provides.
            preserve_names = frozenset(
                outer.relation.name for outer in outer_levels[:-1]
            )
            expr = GenSelect(
                expr, test, (preserved_for(expr, preserve_names),)
            )
        else:
            expr = Select(expr, test)
    return Project(expr, query.select_attrs)


def example_join_aggregate(theta1: str = ">", theta2: str = "<") -> NestedCountQuery:
    """The paper's Section 1.1 doubly nested query, parameterized by θ."""
    r1 = BaseRel("r1", ("r1_key", "r1_a", "r1_b", "r1_c", "r1_f"))
    r2 = BaseRel("r2", ("r2_key", "r2_c", "r2_d", "r2_e"))
    r3 = BaseRel("r3", ("r3_key", "r3_e", "r3_f"))
    from repro.expr.predicates import eq, make_conjunction

    inner_level = NestedCountQuery(
        relation=r3,
        correlation=make_conjunction([eq("r2_e", "r3_e"), eq("r1_f", "r3_f")]),
        compare_attr="",
        theta="",
        subquery=None,
    )
    mid_level = NestedCountQuery(
        relation=r2,
        correlation=eq("r2_c", "r1_c"),
        compare_attr="r2_d",
        theta=theta2,
        subquery=inner_level,
    )
    return NestedCountQuery(
        relation=r1,
        correlation=None,
        compare_attr="r1_b",
        theta=theta1,
        subquery=mid_level,
        select_attrs=("r1_a",),
    )
