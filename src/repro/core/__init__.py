"""The paper's core contribution: reordering with generalized selection.

* :mod:`repro.core.split` -- breaking conjuncts off (outer) join
  predicates, compensated by a generalized selection at the root
  (identities (1)-(8), Theorem 1).
* :mod:`repro.core.identities` -- the eight identities of Section 3.1
  in their literal forms (with the corrected identity (6)).
* :mod:`repro.core.assoc_tree` -- association-tree enumeration per
  Definition 3.2, with the BHAR95a Definition 2.3 baseline.
* :mod:`repro.core.transform` -- the rewrite-closure plan enumerator
  (commutativity, guarded associativity, GS deferral).
* :mod:`repro.core.aggregation` -- aggregation push-up with deferred
  predicates (Example 3.1 / Section 4 step a).
* :mod:`repro.core.simplify` -- outer-join simplification (BHAR95c
  prerequisite: queries must be *simple*).
* :mod:`repro.core.unnest` -- Ganski/Muralikrishna unnesting of
  correlated join-aggregate queries (Section 1.1, Queries 2-3).
* :mod:`repro.core.pipeline` -- the end-to-end reordering pipeline
  (Section 4).
"""

from repro.core.split import DeferResult, SplitError, defer_conjunct, defer_conjuncts
from repro.core.assoc_tree import (
    AssocLeaf,
    AssocNode,
    association_trees,
    count_association_trees,
)
from repro.core.simplify import simplify_outer_joins
from repro.core.transform import enumerate_plans
from repro.core.pipeline import reorder_pipeline

__all__ = [
    "DeferResult",
    "SplitError",
    "defer_conjunct",
    "defer_conjuncts",
    "AssocLeaf",
    "AssocNode",
    "association_trees",
    "count_association_trees",
    "simplify_outer_joins",
    "enumerate_plans",
    "reorder_pipeline",
]
