"""Transformation-based plan enumeration (the Section 4 machinery).

``enumerate_plans`` computes the closure of a join core under verified
rewrite rules:

* commutativity of ``⋈``/``↔`` and the ``→``/``←`` mirror;
* inner-join associativity with conjunct redistribution;
* the valid outer-join associativities (join/LOJ pull-in and -out,
  LOJ-LOJ, FOJ-FOJ -- GALI92a/ROSE90);
* conjunct deferral at the root (``defer_conjunct`` -- the paper's
  identities (1)-(8) generalized), which is what breaks complex
  predicates and predicates over broken-up hyperedges;
* the generalized-join rule realizing the paper's MGOJ with GS:

      a →q (b ⋈p c)  =  σ*_p[a]((a →q b) →TRUE c)

  (the TRUE-predicate left join is a left-preserving pairing: it
  equals the cartesian product on non-empty right operands and keeps
  the left rows otherwise, which makes the identity exact on *all*
  inputs, empty relations included).

Every plan in the closure is equivalent to the seed; the rules were
validated on randomized databases and the property tests re-check
closure-wide equivalence.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime -> core)
    from repro.runtime.budget import Budget

from repro.expr.nodes import (
    Expr,
    GenSelect,
    Join,
    JoinKind,
    preserved_for,
)
from repro.expr.predicates import (
    Predicate,
    TRUE,
    conjuncts_of,
    make_conjunction,
)
from repro.expr.rewrite import iter_nodes, replace_at
from repro.core.split import SplitError, defer_conjunct
from repro.runtime.tracing import add_counter


def _mirror(kind: JoinKind) -> JoinKind:
    return {
        JoinKind.INNER: JoinKind.INNER,
        JoinKind.FULL: JoinKind.FULL,
        JoinKind.LEFT: JoinKind.RIGHT,
        JoinKind.RIGHT: JoinKind.LEFT,
    }[kind]


def commute(node: Expr) -> Iterator[Expr]:
    """a ⊙ b = b ⊙' a (⊙' mirrors outer joins)."""
    if isinstance(node, Join):
        yield Join(_mirror(node.kind), node.right, node.left, node.predicate)


def _attrs(expr: Expr) -> frozenset[str]:
    return frozenset(expr.all_attrs)


def _split_atoms(
    atoms: Iterable[Predicate], inner_left: Expr, inner_right: Expr
) -> tuple[list[Predicate], list[Predicate]]:
    """Partition atoms into (placeable on inner join, must stay on top)."""
    inner_scope = _attrs(inner_left) | _attrs(inner_right)
    inside, outside = [], []
    for atom in atoms:
        refs = atom.attrs
        if refs <= inner_scope and refs & _attrs(inner_left) and refs & _attrs(inner_right):
            inside.append(atom)
        else:
            outside.append(atom)
    return inside, outside


def assoc_inner(node: Expr) -> Iterator[Expr]:
    """(a ⋈p b) ⋈q c = a ⋈p' (b ⋈q' c), atoms redistributed by scope."""
    if not (isinstance(node, Join) and node.kind is JoinKind.INNER):
        return
    left, right = node.left, node.right
    if isinstance(left, Join) and left.kind is JoinKind.INNER:
        a, b, c = left.left, left.right, right
        atoms = conjuncts_of(left.predicate) + conjuncts_of(node.predicate)
        inside, outside = _split_atoms(atoms, b, c)
        if inside:
            new = Join(
                JoinKind.INNER,
                a,
                Join(JoinKind.INNER, b, c, make_conjunction(inside)),
                make_conjunction(outside),
            )
            yield new


def pull_join_into_loj(node: Expr) -> Iterator[Expr]:
    """(a ⋈p b) →q c = a ⋈p (b →q c)   when sch(q) ⊆ attrs(b, c)."""
    if not (isinstance(node, Join) and node.kind is JoinKind.LEFT):
        return
    left = node.left
    if isinstance(left, Join) and left.kind is JoinKind.INNER:
        a, b, c = left.left, left.right, node.right
        if node.predicate.attrs <= _attrs(b) | _attrs(c):
            yield Join(
                JoinKind.INNER,
                a,
                Join(JoinKind.LEFT, b, c, node.predicate),
                left.predicate,
            )


def push_loj_out_of_join(node: Expr) -> Iterator[Expr]:
    """a ⋈p (b →q c) = (a ⋈p b) →q c   when sch(p) ⊆ attrs(a, b)."""
    if not (isinstance(node, Join) and node.kind is JoinKind.INNER):
        return
    right = node.right
    if isinstance(right, Join) and right.kind is JoinKind.LEFT:
        a, b, c = node.left, right.left, right.right
        if node.predicate.attrs <= _attrs(a) | _attrs(b):
            yield Join(
                JoinKind.LEFT,
                Join(JoinKind.INNER, a, b, node.predicate),
                c,
                right.predicate,
            )


def loj_assoc(node: Expr) -> Iterator[Expr]:
    """(a →p b) →q c = a →p (b →q c)   when sch(q) ⊆ attrs(b, c).

    Both directions; valid because predicates are null-intolerant.
    """
    if not (isinstance(node, Join) and node.kind is JoinKind.LEFT):
        return
    left, right = node.left, node.right
    if isinstance(left, Join) and left.kind is JoinKind.LEFT:
        a, b, c = left.left, left.right, node.right
        if node.predicate.attrs <= _attrs(b) | _attrs(c) and node.predicate.attrs & _attrs(b):
            yield Join(
                JoinKind.LEFT,
                a,
                Join(JoinKind.LEFT, b, c, node.predicate),
                left.predicate,
            )
    if isinstance(right, Join) and right.kind is JoinKind.LEFT:
        a, b, c = node.left, right.left, right.right
        if node.predicate.attrs <= _attrs(a) | _attrs(b):
            yield Join(
                JoinKind.LEFT,
                Join(JoinKind.LEFT, a, b, node.predicate),
                c,
                right.predicate,
            )


def foj_assoc(node: Expr) -> Iterator[Expr]:
    """(a ↔p b) ↔q c = a ↔p (b ↔q c)  (GALI92, null-intolerant predicates)."""
    if not (isinstance(node, Join) and node.kind is JoinKind.FULL):
        return
    left, right = node.left, node.right
    if isinstance(left, Join) and left.kind is JoinKind.FULL:
        a, b, c = left.left, left.right, node.right
        if node.predicate.attrs <= _attrs(b) | _attrs(c) and node.predicate.attrs & _attrs(b):
            yield Join(
                JoinKind.FULL,
                a,
                Join(JoinKind.FULL, b, c, node.predicate),
                left.predicate,
            )
    if isinstance(right, Join) and right.kind is JoinKind.FULL:
        a, b, c = node.left, right.left, right.right
        if node.predicate.attrs <= _attrs(a) | _attrs(b) and node.predicate.attrs & _attrs(b):
            yield Join(
                JoinKind.FULL,
                Join(JoinKind.FULL, a, b, node.predicate),
                c,
                right.predicate,
            )


def generalized_join(node: Expr) -> Iterator[Expr]:
    """a →q (b ⋈p c) = σ*_p[a]((a →q b) →TRUE c)  -- MGOJ via GS.

    Fires when ``q`` references only ``a``/``b`` attributes and ``p``
    only ``b``/``c`` attributes; this is the rewrite that lets the
    null-supplying side of an outer join be joined piecemeal (the
    paper's plan for Q4's tree ``(r1.((r2.r4).(r5.r3)))``).
    """
    if not (isinstance(node, Join) and node.kind is JoinKind.LEFT):
        return
    a, right = node.left, node.right
    if not (isinstance(right, Join) and right.kind is JoinKind.INNER):
        return
    if right.predicate is TRUE:
        return
    for b, c in ((right.left, right.right), (right.right, right.left)):
        if node.predicate.attrs <= _attrs(a) | _attrs(b) and node.predicate.attrs & _attrs(b):
            if right.predicate.attrs <= _attrs(b) | _attrs(c):
                pairing = Join(
                    JoinKind.LEFT,
                    Join(JoinKind.LEFT, a, b, node.predicate),
                    c,
                    TRUE,
                )
                yield GenSelect(
                    pairing,
                    right.predicate,
                    (preserved_for(pairing, a.base_names),),
                )


def generalized_join_full(node: Expr) -> Iterator[Expr]:
    """a ↔q (b ⋈p c) = σ*_p[a]((a ↔q b) →TRUE c)  -- the FOJ variant.

    Verified on randomized data (0/400 mismatches, NULLs and empty
    relations included); the pairing's TRUE-predicate left join keeps
    the left rows alive on an empty ``c``.
    """
    if not (isinstance(node, Join) and node.kind is JoinKind.FULL):
        return
    a, right = node.left, node.right
    if not (isinstance(right, Join) and right.kind is JoinKind.INNER):
        return
    if right.predicate is TRUE:
        return
    for b, c in ((right.left, right.right), (right.right, right.left)):
        if node.predicate.attrs <= _attrs(a) | _attrs(b) and node.predicate.attrs & _attrs(b):
            if right.predicate.attrs <= _attrs(b) | _attrs(c):
                pairing = Join(
                    JoinKind.LEFT,
                    Join(JoinKind.FULL, a, b, node.predicate),
                    c,
                    TRUE,
                )
                yield GenSelect(
                    pairing,
                    right.predicate,
                    (preserved_for(pairing, a.base_names),),
                )


def hoist_genselect(node: Expr) -> Iterator[Expr]:
    """Raise a GenSelect operand above a join (one walking step).

    Uses the validated preserved-set walking rules; lets plans built by
    the generalized-join rules keep reordering above the compensation.
    """
    if not isinstance(node, Join):
        return
    if not (
        isinstance(node.left, GenSelect) or isinstance(node.right, GenSelect)
    ):
        return
    from repro.core.aggregation import PullUpError, raise_genselect

    try:
        yield raise_genselect(node)
    except PullUpError:
        return


def absorb_generalized_join(node: Expr) -> Iterator[Expr]:
    """The inverse of :func:`generalized_join` (restores the plain form)."""
    if not isinstance(node, GenSelect):
        return
    child = node.child
    if not (
        isinstance(child, Join)
        and child.kind is JoinKind.LEFT
        and child.predicate is TRUE
    ):
        return
    left = child.left
    if not (isinstance(left, Join) and left.kind is JoinKind.LEFT):
        return
    if len(node.preserved) != 1:
        return
    a, b, c = left.left, left.right, child.right
    pres = node.preserved[0]
    if pres.real != frozenset(a.real_attrs) or pres.virtual != frozenset(a.virtual_attrs):
        return
    if node.predicate.attrs <= _attrs(b) | _attrs(c):
        yield Join(
            JoinKind.LEFT,
            a,
            Join(JoinKind.INNER, b, c, node.predicate),
            left.predicate,
        )


LOCAL_RULES = (
    commute,
    assoc_inner,
    pull_join_into_loj,
    push_loj_out_of_join,
    loj_assoc,
    foj_assoc,
    generalized_join,
    generalized_join_full,
    hoist_genselect,
    absorb_generalized_join,
)


def _local_variants(expr: Expr, rules=LOCAL_RULES) -> Iterator[Expr]:
    for path, node in iter_nodes(expr):
        for rule in rules:
            for replacement in rule(node):
                yield replace_at(expr, path, replacement)


def _defer_variants(expr: Expr) -> Iterator[Expr]:
    """Defer one conjunct of any join whose predicate has several atoms.

    The deferral rewrites the join core into a standalone-equivalent
    GenSelect-over-core, so it applies transparently below any unary
    wrapper chain (GenSelect stack, GroupBy, padding adjustment) by
    congruence.
    """
    from repro.expr.rewrite import with_children

    # locate the join core below the root's unary wrapper chain
    wrappers: list[Expr] = []
    core = expr
    while not isinstance(core, Join) and len(core.children()) == 1:
        wrappers.append(core)
        core = core.children()[0]
    if not isinstance(core, Join):
        return
    for path, node in iter_nodes(core):
        if not isinstance(node, Join):
            continue
        atoms = conjuncts_of(node.predicate)
        if len(atoms) < 2:
            continue
        # only walk through pure-join lineages
        for atom in atoms:
            try:
                result = defer_conjunct(core, path, atom)
            except SplitError:
                continue
            rebuilt: Expr = result.expr
            for wrapper in reversed(wrappers):
                rebuilt = with_children(wrapper, (rebuilt,))
            yield rebuilt


GS_FREE_RULES = tuple(
    rule
    for rule in LOCAL_RULES
    if rule
    not in (
        generalized_join,
        generalized_join_full,
        hoist_genselect,
        absorb_generalized_join,
    )
)


def enumerate_plans(
    seed: Expr,
    max_plans: int = 20000,
    with_deferral: bool = True,
    with_gs: bool = True,
    budget: "Budget | None" = None,
) -> list[Expr]:
    """The closure of ``seed`` under the rewrite rules (BFS, deduped).

    Every returned expression is equivalent to ``seed``.  The closure
    is capped at ``max_plans`` expansions as a safety net; the cap is
    never hit for the paper-sized queries.  ``with_gs=False`` restricts
    to the classical rules (no conjunct deferral, no generalized
    join) -- the pre-paper baseline where complex predicates freeze
    the order.

    ``budget`` adds *hard* limits on top of the soft cap: each BFS
    expansion is a cooperative checkpoint (deadline check), and every
    distinct plan admitted to the closure charges the plan counter, so
    an exploding closure raises :class:`repro.errors.PlanBudgetExceeded`
    / :class:`repro.errors.DeadlineExceeded` instead of truncating
    silently -- the resilient runtime catches these and degrades.
    """
    if not with_gs:
        with_deferral = False
    rules = LOCAL_RULES if with_gs else GS_FREE_RULES
    if budget is not None:
        budget.charge_plans(1, "enumerate_plans")
    seen: dict[Expr, None] = {seed: None}
    frontier = [seed]
    expansions = 0
    while frontier:
        expr = frontier.pop()
        expansions += 1
        if budget is not None:
            budget.check_deadline("enumerate_plans")
        variants: list[Expr] = list(_local_variants(expr, rules))
        if with_deferral:
            variants.extend(_defer_variants(expr))
        for variant in variants:
            if variant not in seen:
                if len(seen) >= max_plans:
                    return _accounted(seen, expansions)
                if budget is not None:
                    budget.charge_plans(1, "enumerate_plans")
                seen[variant] = None
                frontier.append(variant)
    return _accounted(seen, expansions)


def _accounted(seen: dict[Expr, None], expansions: int) -> list[Expr]:
    """Stamp the enumeration counters on the enclosing trace span."""
    add_counter("plans_admitted", len(seen))
    add_counter("frontier_expansions", expansions)
    return list(seen)
