"""The eight association identities of Section 3.1, literal forms.

Each function builds the paper's left-hand side and right-hand side as
expression trees over caller-supplied operands, so tests and the X3
bench can evaluate both on data and compare.  Identity (6) is
implemented in its *corrected* form -- the printed preserved argument
``r2r3`` over-preserves (see DESIGN.md); the correct compensation
preserves only ``r1``.  ``identity_6_as_printed`` builds the printed
(incorrect) form so the erratum can be demonstrated.

Notation: ``p1`` is the deferred conjunct, ``p2`` the remainder;
``⊙`` ranges over join and the outer joins, as in the paper.
"""

from __future__ import annotations

from repro.expr.nodes import (
    Expr,
    GenSelect,
    Join,
    JoinKind,
    full_outer,
    inner,
    left_outer,
    preserved_for,
    right_outer,
)
from repro.expr.predicates import Predicate, make_conjunction


def _conj(p1: Predicate, p2: Predicate) -> Predicate:
    return make_conjunction([p1, p2])


def _names(expr: Expr) -> frozenset[str]:
    return expr.base_names


def identity_1(r1: Expr, r2: Expr, p1: Predicate, p2: Predicate) -> tuple[Expr, Expr]:
    """(1)  r1 →^{p1∧p2} r2  =  σ*_{p1}[r1](r1 →^{p2} r2)."""
    lhs = left_outer(r1, r2, _conj(p1, p2))
    inner_expr = left_outer(r1, r2, p2)
    rhs = GenSelect(inner_expr, p1, (preserved_for(inner_expr, _names(r1)),))
    return lhs, rhs


def identity_2(r1: Expr, r2: Expr, p1: Predicate, p2: Predicate) -> tuple[Expr, Expr]:
    """(2)  r1 ↔^{p1∧p2} r2  =  σ*_{p1}[r1, r2](r1 ↔^{p2} r2)."""
    lhs = full_outer(r1, r2, _conj(p1, p2))
    inner_expr = full_outer(r1, r2, p2)
    rhs = GenSelect(
        inner_expr,
        p1,
        (
            preserved_for(inner_expr, _names(r1)),
            preserved_for(inner_expr, _names(r2)),
        ),
    )
    return lhs, rhs


def identity_3(
    r1: Expr,
    r2: Expr,
    r3: Expr,
    kind: JoinKind,
    p12: Predicate,
    p13: Predicate,
    p23: Predicate,
) -> tuple[Expr, Expr]:
    """(3)  (r1 ⊙ r2) →^{p13∧p23} r3 = σ*_{p13}[r1r2]((r1 ⊙ r2) →^{p23} r3)."""
    left = Join(kind, r1, r2, p12)
    lhs = left_outer(left, r3, _conj(p13, p23))
    inner_expr = left_outer(left, r3, p23)
    rhs = GenSelect(
        inner_expr, p13, (preserved_for(inner_expr, _names(r1) | _names(r2)),)
    )
    return lhs, rhs


def identity_4(
    r1: Expr,
    r2: Expr,
    r3: Expr,
    kind: JoinKind,
    p12: Predicate,
    p13: Predicate,
    p23: Predicate,
) -> tuple[Expr, Expr]:
    """(4)  (r1 ⊙ r2) ↔^{p13∧p23} r3 = σ*_{p13}[r1r2, r3]((r1 ⊙ r2) ↔^{p23} r3)."""
    left = Join(kind, r1, r2, p12)
    lhs = full_outer(left, r3, _conj(p13, p23))
    inner_expr = full_outer(left, r3, p23)
    rhs = GenSelect(
        inner_expr,
        p13,
        (
            preserved_for(inner_expr, _names(r1) | _names(r2)),
            preserved_for(inner_expr, _names(r3)),
        ),
    )
    return lhs, rhs


def identity_5(
    r1: Expr, r2: Expr, r3: Expr, p12: Predicate, p1: Predicate, p2: Predicate
) -> tuple[Expr, Expr]:
    """(5)  r1 →^{p12} (r2 ⋈^{p1∧p2} r3) = σ*_{p1}[r1](r1 →^{p12} (r2 ⋈^{p2} r3))."""
    lhs = left_outer(r1, inner(r2, r3, _conj(p1, p2)), p12)
    inner_expr = left_outer(r1, inner(r2, r3, p2), p12)
    rhs = GenSelect(inner_expr, p1, (preserved_for(inner_expr, _names(r1)),))
    return lhs, rhs


def identity_6(
    r1: Expr, r2: Expr, r3: Expr, p12: Predicate, p1: Predicate, p2: Predicate
) -> tuple[Expr, Expr]:
    """(6), corrected:  r1 ↔^{p12} (r2 ⋈^{p1∧p2} r3) = σ*_{p1}[r1](...).

    The printed preserved argument ``r2r3`` is an erratum: the inner
    join filters p2∧¬p1 pairs out of the left-hand side before the
    full outer join can preserve them, so re-adding them at the top is
    wrong.  See ``identity_6_as_printed``.
    """
    lhs = full_outer(r1, inner(r2, r3, _conj(p1, p2)), p12)
    inner_expr = full_outer(r1, inner(r2, r3, p2), p12)
    rhs = GenSelect(inner_expr, p1, (preserved_for(inner_expr, _names(r1)),))
    return lhs, rhs


def identity_6_as_printed(
    r1: Expr, r2: Expr, r3: Expr, p12: Predicate, p1: Predicate, p2: Predicate
) -> tuple[Expr, Expr]:
    """Identity (6) exactly as printed -- demonstrably over-preserving."""
    lhs = full_outer(r1, inner(r2, r3, _conj(p1, p2)), p12)
    inner_expr = full_outer(r1, inner(r2, r3, p2), p12)
    rhs = GenSelect(
        inner_expr,
        p1,
        (
            preserved_for(inner_expr, _names(r1)),
            preserved_for(inner_expr, _names(r2) | _names(r3)),
        ),
    )
    return lhs, rhs


def identity_7(
    r1: Expr, r2: Expr, r3: Expr, p12: Predicate, p1: Predicate, p2: Predicate
) -> tuple[Expr, Expr]:
    """(7)  r1 ↔^{p12} (r2 ←^{p1∧p2} r3) = σ*_{p1}[r1, r3](...)."""
    lhs = full_outer(r1, right_outer(r2, r3, _conj(p1, p2)), p12)
    inner_expr = full_outer(r1, right_outer(r2, r3, p2), p12)
    rhs = GenSelect(
        inner_expr,
        p1,
        (
            preserved_for(inner_expr, _names(r1)),
            preserved_for(inner_expr, _names(r3)),
        ),
    )
    return lhs, rhs


def identity_8(
    r1: Expr,
    r2: Expr,
    r3: Expr,
    r4: Expr,
    p12: Predicate,
    p1: Predicate,
    p2: Predicate,
    p24: Predicate,
) -> tuple[Expr, Expr]:
    """(8)  r1 ↔^{p12} ((r2 ⋈^{p1∧p2} r3) ←^{p24} r4) = σ*_{p1}[r1, r4](...)."""
    lhs = full_outer(
        r1, right_outer(inner(r2, r3, _conj(p1, p2)), r4, p24), p12
    )
    inner_expr = full_outer(r1, right_outer(inner(r2, r3, p2), r4, p24), p12)
    rhs = GenSelect(
        inner_expr,
        p1,
        (
            preserved_for(inner_expr, _names(r1)),
            preserved_for(inner_expr, _names(r4)),
        ),
    )
    return lhs, rhs


ALL_IDENTITIES = {
    1: identity_1,
    2: identity_2,
    3: identity_3,
    4: identity_4,
    5: identity_5,
    6: identity_6,
    7: identity_7,
    8: identity_8,
}
