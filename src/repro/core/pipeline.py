"""The end-to-end reordering pipeline (Section 4).

Step a) push aggregations to the root, deferring any predicate
conjunct that references an aggregated column (Example 3.1); step b)
enumerate all equivalent expression trees of the join core (complex
predicates broken up via generalized selection).  The optimizer picks
the cheapest tree; :func:`reorder_pipeline` yields them all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime -> core)
    from repro.runtime.budget import Budget

from repro.expr.nodes import (
    AdjustPadding,
    Expr,
    GenSelect,
    GroupBy,
    Project,
    Select,
)
from repro.core.aggregation import pull_up_aggregations
from repro.core.simplify import simplify_outer_joins
from repro.core.transform import enumerate_plans
from repro.runtime.tracing import span


def reorder_pipeline(
    query: Expr, max_plans: int = 20000, budget: "Budget | None" = None
) -> list[Expr]:
    """All equivalent plans for ``query``.

    The query is simplified, its aggregations are pulled to the root
    (predicates on aggregated columns deferred with generalized
    selections), and the join core below is enumerated by the rewrite
    closure.  Each returned plan is equivalent to ``query``.  An
    optional ``budget`` makes enumeration raise the typed
    :class:`repro.errors.BudgetExceeded` family instead of running
    unbounded (see :func:`repro.core.transform.enumerate_plans`).
    """
    with span("pipeline.normalize"):
        normalized = pull_up_aggregations(simplify_outer_joins(query))
    if budget is not None:
        budget.check_deadline("reorder_pipeline")

    # split the tree into (wrapper stack, join core): the core is the
    # part below the outermost GroupBy/GenSelect chain
    stack: list[Expr] = []
    core: Expr = normalized
    while isinstance(core, (GroupBy, GenSelect, AdjustPadding, Project, Select)):
        stack.append(core)
        core = core.children()[0]

    plans = []
    with span("pipeline.enumerate"):
        core_plans = enumerate_plans(core, max_plans=max_plans, budget=budget)
    for core_plan in core_plans:
        plan = core_plan
        for wrapper in reversed(stack):
            plan = _rewrap(wrapper, plan)
        plans.append(plan)
    # the as-written shape (lazy aggregation) remains a candidate: when
    # the eager/pushed-up form loses (unselective filters), the
    # optimizer must still be able to keep the original order
    if query not in plans:
        plans.append(query)
    if normalized not in plans:
        plans.append(normalized)
    return plans


def _rewrap(wrapper: Expr, child: Expr) -> Expr:
    from dataclasses import replace as dc_replace

    return dc_replace(wrapper, child=child)
