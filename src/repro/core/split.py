"""Deferred application of predicate conjuncts (Section 3).

``defer_conjunct`` removes one conjunct from a join's predicate and
compensates with a generalized selection at the root of the (sub)tree,
computing the preserved relations Theorem 1 prescribes.  It subsumes
identities (1)-(8) -- they are the one- and two-ancestor special cases
-- and extends them to arbitrary tree positions.

The preserved sets are computed by walking from the split operator up
to the root (see DESIGN.md, "Theorem 1 compensation, operationally"):

* start with the preserved side(s) of the split operator -- the full
  relation sets of its operand subtrees (``pres(h)`` seeds);
* at each ancestor join ``A`` (with the split node on side ``X`` and
  the other operand covering relations ``S``), for every preserved
  group ``g`` collected so far:

  - if every ``X``-side attribute of ``A``'s predicate belongs to
    ``g``'s relations, the null-padded ``g`` rows can still match
    across ``A`` -- the group *extends* to ``g ∪ S``;
  - otherwise the padding carries a NULL into ``A``'s predicate; the
    padded rows survive only if ``A`` preserves the ``X`` side (the
    group is kept, padding now covers ``S`` too), and are lost
    otherwise (the group is dropped);

* whenever ``A`` preserves the *other* side, that side's tuples can
  lose their padding to rows the deferred conjunct later rejects, so
  ``S`` joins the collection as a new group (the paper's
  ``pres_h(h_i)`` for each conflicting outer join ``h_i``).

Every rule above was validated on randomized databases before being
adopted; the property tests in ``tests/core`` re-check them on every
run.
"""

from __future__ import annotations

from repro.errors import OptimizerInternalError

from dataclasses import dataclass, replace as dc_replace

from repro.expr.nodes import (
    BaseRel,
    Expr,
    GenSelect,
    Join,
    JoinKind,
    preserved_for,
)
from repro.expr.predicates import Predicate, conjuncts_of, make_conjunction
from repro.expr.rewrite import Path, ancestors_of, node_at, replace_at
from repro.runtime.tracing import add_counter


class SplitError(OptimizerInternalError):
    """Raised when a conjunct cannot be deferred from its position."""


@dataclass(frozen=True)
class DeferResult:
    """Outcome of deferring one conjunct.

    ``expr`` is the compensated tree (a GenSelect at the root);
    ``groups`` the preserved relation-name groups it uses.
    """

    expr: GenSelect
    conjunct: Predicate
    groups: tuple[frozenset[str], ...]


def _attrs_of_bases(root: Expr, bases: frozenset[str]) -> frozenset[str]:
    out: set[str] = set()
    for node in root.walk():
        if isinstance(node, BaseRel) and node.name in bases:
            out.update(node.all_attrs)
    return frozenset(out)


def defer_conjunct(root: Expr, path: Path, conjunct: Predicate) -> DeferResult:
    """Remove ``conjunct`` from the join at ``path``; compensate at the root.

    Every node on the path (including the root) must be a Join; the
    pipeline arranges this by operating on join cores.  Returns the
    equivalent expression ``σ*_conjunct[groups](root')``.
    """
    add_counter("defer_conjunct_calls")
    target = node_at(root, path)
    if not isinstance(target, Join):
        raise SplitError(f"node at {path} is not a join")
    atoms = conjuncts_of(target.predicate)
    if conjunct not in atoms:
        raise SplitError(f"{conjunct} is not a conjunct of the join predicate")
    remaining = make_conjunction([a for a in atoms if a != conjunct])

    new_target = dc_replace(target, predicate=remaining)
    new_root = replace_at(root, path, new_target)

    groups = _walk_preserved(root, path, target)
    preserved = tuple(
        preserved_for(new_root, g, label="".join(sorted(g))) for g in groups
    )
    gs = GenSelect(new_root, conjunct, preserved)
    return DeferResult(gs, conjunct, tuple(groups))


def _walk_preserved(
    root: Expr, path: Path, target: Join
) -> list[frozenset[str]]:
    """The preserved relation groups for deferring a conjunct of ``target``."""
    groups: list[frozenset[str]] = []
    if target.kind.preserves_left:
        groups.append(target.left.base_names)
    if target.kind.preserves_right:
        groups.append(target.right.base_names)

    lineage = ancestors_of(root, path)
    # innermost ancestor first
    for depth in range(len(lineage) - 1, -1, -1):
        _, ancestor = lineage[depth]
        if not isinstance(ancestor, Join):
            raise SplitError(
                f"ancestor {type(ancestor).__name__} above the split is not a "
                "join; defer within the join core"
            )
        x_index = path[depth]
        x_side = ancestor.children()[x_index]
        other = ancestor.children()[1 - x_index]
        other_bases = other.base_names
        x_attrs = frozenset(x_side.all_attrs)
        q_x = ancestor.predicate.attrs & x_attrs
        x_preserved = (
            ancestor.kind.preserves_left
            if x_index == 0
            else ancestor.kind.preserves_right
        )
        other_preserved = (
            ancestor.kind.preserves_right
            if x_index == 0
            else ancestor.kind.preserves_left
        )

        updated: list[frozenset[str]] = []
        extended = False
        for group in groups:
            group_attrs = _attrs_of_bases(root, group)
            if q_x <= group_attrs:
                updated.append(group | other_bases)
                extended = True
            elif x_preserved:
                updated.append(group)
            # otherwise the padding dies at this ancestor: drop the group
        if other_preserved and not extended:
            # a group extended across the ancestor already preserves the
            # other side's tuples (their padding pairs with the group's
            # parts), so the far-side group is only added when no
            # extension subsumes it -- validated empirically
            updated.append(other_bases)
        groups = updated
        _check_disjoint(groups)
    return _dedupe(groups)


def _check_disjoint(groups: list[frozenset[str]]) -> None:
    seen: set[str] = set()
    for group in _dedupe(groups):
        if group & seen:
            raise SplitError(
                "preserved groups overlap after walking the ancestors; "
                "this split shape is not supported"
            )
        seen |= group


def _dedupe(groups: list[frozenset[str]]) -> list[frozenset[str]]:
    out: list[frozenset[str]] = []
    for group in groups:
        if group not in out:
            out.append(group)
    return out


def defer_conjuncts(
    root: Expr, picks: list[tuple[Path, Predicate]]
) -> Expr:
    """Defer several conjuncts, stacking compensations.

    Earlier picks end up *outermost*, matching the paper's Q6
    treatment (break the independent predicate first, then its
    dependents).  Each deferral is computed on the current core and
    wrapped inside the existing GenSelect stack.
    """
    stack: list[GenSelect] = []
    core = root
    for path, conjunct in picks:
        result = defer_conjunct(core, path, conjunct)
        stack.append(result.expr)
        core = result.expr.child
    # rebuild: each GenSelect wraps the final core, innermost last
    expr: Expr = core
    for gs in reversed(stack):
        expr = GenSelect(expr, gs.predicate, gs.preserved)
    return expr
