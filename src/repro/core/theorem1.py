"""Theorem 1, stated on the hypergraph (Section 3.1).

For a query ``Q = Q1 ⊙^{p1∧p2} Q2`` whose complex predicate sits at
the *root* (Lemma 1 normalizes other positions), Theorem 1 gives the
preserved sets of the compensating generalized selection directly from
the hypergraph:

* ``⊙ = ↔``: ``σ*_{p1}[pres1(h), pres2(h)]``;
* ``⊙ = →``: ``σ*_{p1}[pres_h(h1), …, pres_h(hn), pres(h)]`` where
  ``conf(h) = {h1..hn}``;
* ``⊙ = ⋈``: the ``pres_h(hi)`` only.

This module computes those sets from the hypergraph machinery
(:mod:`repro.hypergraph.conflicts`); the tests cross-check them
against the tree-walking computation of :mod:`repro.core.split`, which
was validated row-by-row on randomized databases.  Note the paper's
formula always lists ``pres(h)``; when a conflicting outer join's
far-side component *extends over* the preserved component the two
collapse (see DESIGN.md's "extension subsumes the far side") -- the
hypergraph formula below reproduces that collapse so both computations
agree.
"""

from __future__ import annotations

from repro.errors import OptimizerInternalError

from repro.expr.nodes import Expr, Join, JoinKind
from repro.hypergraph import conf, hypergraph_of, pres, pres_away, pres_sides
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph
from repro.runtime.tracing import add_counter


class Theorem1Error(OptimizerInternalError):
    """Raised when the query shape is outside the theorem's premise."""


def root_edge(graph: Hypergraph, query: Join) -> Hyperedge:
    """The hyperedge corresponding to the root operator of ``query``."""
    for edge in graph.edges:
        if edge.predicate == query.predicate:
            return edge
    raise Theorem1Error("no hyperedge matches the root predicate")


def theorem1_preserved_sets(query: Expr) -> tuple[frozenset[str], ...]:
    """The preserved relation groups Theorem 1 prescribes at the root.

    ``query`` must be a Join whose predicate is the complex predicate
    being split (the theorem's premise).  Returns the groups as sets
    of base relation names, in a canonical order.
    """
    if not isinstance(query, Join):
        raise Theorem1Error("Theorem 1 needs a binary operator at the root")
    add_counter("theorem1_analyses")
    graph = hypergraph_of(query)
    h = root_edge(graph, query)

    groups: list[frozenset[str]] = []
    if query.kind is JoinKind.FULL:
        left, right = pres_sides(graph, h)
        groups = [left, right]
    elif query.kind in (JoinKind.LEFT, JoinKind.RIGHT):
        base = pres(graph, h)
        for conflict in conf(graph, h):
            away = pres_away(graph, conflict, h)
            if base & away:
                base = base | away
            else:
                groups.append(away)
        groups.append(base)
    else:  # inner join
        for conflict in conf(graph, h):
            groups.append(pres_away(graph, conflict, h))

    # conflicts on the same side merge transitively
    merged: list[frozenset[str]] = []
    for group in groups:
        absorbed = False
        for index, existing in enumerate(merged):
            if group & existing:
                merged[index] = existing | group
                absorbed = True
                break
        if not absorbed:
            merged.append(group)
    return tuple(sorted(merged, key=lambda g: sorted(g)))
