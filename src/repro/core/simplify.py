"""Outer-join simplification (the BHAR95c prerequisite).

The paper assumes queries are *simple*: no redundant (full) outer join
edges.  An outer join's preservation of a side is redundant when some
ancestor predicate is null-intolerant in the attributes of the *other*
(null-supplied) side -- the padded rows can never survive it.
Simplification downgrades:

* ``↔`` to ``→``/``←`` when one side's preservation is redundant;
* ``→``/``←`` to ``⋈`` when the only preservation is redundant;

iterating to a fixpoint.  This is the classical rewrite (GALI92b,
BHAR95c) that commercial optimizers run before join reordering.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.expr.nodes import Expr, GenSelect, GroupBy, Join, JoinKind, Select
from repro.expr.rewrite import ancestors_of, iter_nodes, replace_at


def _null_rejecting_attrs(root: Expr, path: tuple[int, ...]) -> frozenset[str]:
    """Attributes some ancestor predicate requires to be non-NULL.

    Walking from the node upward: a Select's conjunctive predicate
    rejects rows with a NULL in any referenced attribute; so does a
    Join's, except that rows entering from a side the join preserves
    survive the failure (padded), so such an ancestor contributes
    nothing.  The walk stops at GroupBy / GenSelect boundaries, whose
    interaction with padding is not a plain rejection.
    """
    rejecting: set[str] = set()
    lineage = ancestors_of(root, path)
    for depth in range(len(lineage) - 1, -1, -1):
        _, ancestor = lineage[depth]
        if isinstance(ancestor, (GroupBy, GenSelect)):
            break
        if isinstance(ancestor, Select):
            for atom in ancestor.predicate.atoms():
                if atom.null_intolerant:
                    rejecting |= atom.attrs
        elif isinstance(ancestor, Join):
            came_from = path[depth]
            side_preserved = (
                ancestor.kind.preserves_left
                if came_from == 0
                else ancestor.kind.preserves_right
            )
            if not side_preserved:
                rejecting |= ancestor.predicate.attrs
    return frozenset(rejecting)


def simplify_outer_joins(root: Expr) -> Expr:
    """Downgrade redundant outer joins until a fixpoint is reached.

    A left outer join's padded rows carry NULLs in the *right* side's
    attributes; if an upstream predicate is null-intolerant in any of
    them, the padding is dead and the join degrades to inner (and
    symmetrically for the other kinds).
    """
    changed = True
    expr = root
    while changed:
        changed = False
        for path, node in iter_nodes(expr):
            if not isinstance(node, Join) or node.kind is JoinKind.INNER:
                continue
            rejecting = _null_rejecting_attrs(expr, path)
            left_attrs = frozenset(node.left.all_attrs)
            right_attrs = frozenset(node.right.all_attrs)
            kind = node.kind
            # left-preserving padding has NULLs in the right attributes
            if kind.preserves_left and rejecting & right_attrs:
                kind = JoinKind.RIGHT if kind is JoinKind.FULL else JoinKind.INNER
            if kind.preserves_right and rejecting & left_attrs:
                kind = JoinKind.LEFT if kind is JoinKind.FULL else JoinKind.INNER
            if kind is not node.kind:
                expr = replace_at(expr, path, dc_replace(node, kind=kind))
                changed = True
                break
    return expr
