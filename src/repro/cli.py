"""Command-line interface.

    python -m repro run script.sql --data DIR [--engine reference|hash|vector]
                                   [--fast] [--budget-ms MS]
                                   [--max-plans N] [--max-rows N] [--verify]
                                   [--enum-tier auto|dp|partitioned|goo]
                                   [--workers N] [--queue-depth N]
                                   [--faults PLAN] [--fault-seed N]
                                   [--analyze] [--trace-out FILE]
                                   [--metrics-out FILE]
                                   [--replan-threshold N]
                                   [--feedback-in FILE] [--feedback-out FILE]
    python -m repro explain script.sql --data DIR [--plans N] [--budget-ms MS]
                                       [--enum-tier auto|dp|partitioned|goo]
    python -m repro demo

``DIR`` holds one CSV per base table (header row = column names;
values parsed as int, then float, then string; empty cells are NULL).
A script is a sequence of ``;``-separated statements; ``create view``
statements register views, each ``select`` runs (or is explained).

Every statement goes through the resilient runtime
(:class:`repro.runtime.QuerySession`): optimization and execution run
under the budget, degrading gracefully (full reorder -> partitioned
DP -> greedy operator ordering -> greedy closure -> as written) when a
cap is hit or the query joins too many relations for a rung, e.g.

    # answer within ~half a second of optimization effort, and
    # double-check the chosen plan against the reference interpreter:
    python -m repro run script.sql --data DIR --budget-ms 500 --verify

A degraded or verification-quarantined statement reports its stage in
a ``-- stage: ...`` footer; see docs/ROBUSTNESS.md.

``--replan-threshold N`` arms adaptive re-optimization: operators
report observed cardinalities into a :class:`FeedbackStore`, and a
mid-flight plan whose actual rows blow past ``N x`` the estimate is
aborted, re-planned under the observed counts, and resumed from its
materialized intermediates (a ``-- replans:`` footer reports it).
``--feedback-out`` persists the learned corrections as JSON and
``--feedback-in`` preloads them, so a later run starts pre-corrected.

With ``--workers`` (or any ``--faults`` plan) statements route through
the concurrent :class:`repro.runtime.QueryService`: per-engine circuit
breakers reroute around a crashing engine (``vector -> hash ->
reference``), breaker transitions and rerouted statements show up as
``-- breaker ...`` / ``-- engine: ...`` footers, and the process exit
code distinguishes clean, degraded, budget-exhausted and quarantined
outcomes (see ``--help``).
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
import time
from fractions import Fraction
from pathlib import Path

from repro.errors import (
    BudgetExceeded,
    EngineFailure,
    InjectedFault,
    WorkerCrashed,
)
from repro.expr import Database
from repro.expr.display import to_tree
from repro.optimizer import measured_cost
from repro.relalg import Relation
from repro.relalg.nulls import NULL
from repro.runtime import (
    Budget,
    DegradationLevel,
    FaultPlan,
    FeedbackStore,
    QueryService,
    QuerySession,
    Tracer,
    trace_scope,
)
from repro.runtime.metrics import (
    MetricsRegistry,
    service_registry,
    sync_cache_metrics,
    sync_engine_metrics,
)
from repro.runtime.tracing import span
from repro.sql import SqlCatalog, parse_statements, translate
from repro.sql.ast import CreateViewStmt, SelectStmt, UnionStmt

#: Documented process exit codes (see ``--help`` and docs/ROBUSTNESS.md).
EXIT_OK = 0  # clean answer, or answered-but-degraded (footer says so)
EXIT_BUDGET = 3  # a budget cap held even at the last-resort rung
EXIT_QUARANTINE = 4  # answered via quarantine fallback (plan mismatch)
EXIT_ENGINE = 5  # every engine failed (e.g. under an injected fault plan)
EXIT_INTERRUPTED = 130  # SIGINT/SIGTERM: drained, shut down, no traceback

_EXIT_CODE_DOC = """\
exit codes:
  0    clean success, including answered-but-degraded statements
       (degradation is reported in a `-- stage:` footer, not an error)
  3    a resource budget was exhausted at every rung, including the
       last resort (the row cap bounds memory, so it is never lifted)
  4    answered, but a chosen plan failed differential verification and
       was quarantined (the reported rows come from the original query)
  5    every execution engine failed the statement, or (with
       --isolation process) a worker died past its retry budget --
       seen under `--faults` crash/kill9 plans
  130  interrupted by SIGINT or SIGTERM: in-flight work was drained
       and the service shut down cleanly before exiting
"""


def _parse_value(text: str):
    if text == "":
        return NULL
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return Fraction(text)
    except ValueError:
        return text


def load_csv_database(directory: Path) -> tuple[Database, SqlCatalog]:
    """Load every ``*.csv`` in ``directory`` as a base table."""
    db = Database()
    catalog = SqlCatalog()
    files = sorted(directory.glob("*.csv"))
    if not files:
        raise SystemExit(f"no .csv files found in {directory}")
    for path in files:
        name = path.stem
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                raise SystemExit(f"{path} is empty (no header row)")
            rows = [tuple(_parse_value(cell) for cell in row) for row in reader]
        catalog.add_table(name, tuple(header))
        db.add(name, Relation.base(name, header, rows))
    return db, catalog


def _print_outcome_footers(outcome, verify: bool, out) -> int:
    """The shared per-statement footers; returns the statement's exit code."""
    code = EXIT_OK
    if outcome.degradation_level is not DegradationLevel.FULL:
        print(
            f"-- stage: {outcome.degradation_level.name.lower()}"
            + (
                f" ({outcome.degradation_reason})"
                if outcome.degradation_reason
                else ""
            ),
            file=out,
        )
    if verify and outcome.verified is not None:
        print(
            "-- verified: plan matches reference"
            if outcome.verified
            else "-- verified: MISMATCH (plan quarantined, original used)",
            file=out,
        )
        if outcome.verified is False:
            code = EXIT_QUARANTINE
    cache = outcome.plan_cache
    if cache.get("hit") or cache.get("hits", 0) > 0:
        print(
            f"-- plan cache: {'hit' if cache.get('hit') else 'miss'} "
            f"(hits {cache.get('hits', 0)}, misses {cache.get('misses', 0)}, "
            f"entries {cache.get('entries', 0)})",
            file=out,
        )
    if getattr(outcome, "replans", 0):
        events = getattr(outcome, "replan_events", []) or []
        outcomes = ", ".join(e.get("outcome", "?") for e in events)
        print(
            f"-- replans: {outcome.replans}"
            + (f" ({outcomes})" if outcomes else ""),
            file=out,
        )
    return code


def _print_service_footers(service: QueryService, out) -> None:
    """End-of-script service summary: breaker states and incident mix."""
    snapshot = service.snapshot()
    for name, breaker in snapshot["breakers"].items():
        if breaker["state"] != "closed" or breaker["opened_count"]:
            print(
                f"-- breaker {name}: {breaker['state']} "
                f"(opened {breaker['opened_count']}x)",
                file=out,
            )
    if len(service.incidents):
        kinds: dict[str, int] = {}
        for incident in service.incidents:
            kinds[incident.kind] = kinds.get(incident.kind, 0) + 1
        mix = ", ".join(f"{k}: {n}" for k, n in sorted(kinds.items()))
        print(f"-- incidents: {len(service.incidents)} ({mix})", file=out)
    procpool = snapshot.get("procpool") or {}
    shm_info = procpool.get("shm")
    if shm_info:
        fallback = shm_info.get("fallback_tables") or []
        print(
            f"-- shm: {shm_info['segments']} segment(s), "
            f"{shm_info['bytes']} bytes"
            + (f", {len(fallback)} table(s) on pickle fallback" if fallback else ""),
            file=out,
        )
    feedback = snapshot.get("feedback")
    if feedback and feedback.get("ingests"):
        print(
            f"-- feedback: {feedback['entries']} entries, "
            f"generation {feedback['generation']}, "
            f"{feedback['quarantined_entries']} quarantined",
            file=out,
        )


def run_script(
    text: str,
    db: Database,
    catalog: SqlCatalog,
    out=None,
    fast: bool = False,
    explain: bool = False,
    plans: int = 3,
    budget: Budget | None = None,
    verify: bool = False,
    verify_seed: int = 0,
    session: QuerySession | None = None,
    engine: str | None = None,
    faults: str | None = None,
    fault_seed: int = 0,
    workers: int = 0,
    queue_depth: int = 16,
    analyze: bool = False,
    trace_out: Path | None = None,
    metrics_out: Path | None = None,
    replan_threshold: float | None = None,
    feedback_in: Path | None = None,
    feedback_out: Path | None = None,
    enum_tier: str = "auto",
    isolation: str = "thread",
    max_retries: int | None = None,
    shm: bool | None = None,
) -> int:
    """Run (or explain) a script; returns the process exit code.

    With ``workers >= 1``, a ``faults`` plan, or
    ``isolation="process"``, statements route through a
    :class:`repro.runtime.QueryService` (admission control, circuit
    breakers, engine fallback) instead of a bare session;
    ``isolation="process"`` additionally runs the workers in
    supervised child processes (see :mod:`repro.runtime.procpool`)
    with ``max_retries`` redeliveries for queries whose worker died.

    ``analyze=True`` is EXPLAIN ANALYZE mode: each select is planned,
    compiled to the physical engine with cost estimates stamped on
    every operator, executed under a tracer, and reported as an
    operator tree (est/actual rows, per-operator time) plus the plan
    lifecycle's span timings.  Analyze always uses the plain-session
    path.  ``trace_out`` / ``metrics_out`` write a Chrome-trace JSON /
    a metrics export (JSON or Prometheus text by extension) at exit.

    ``replan_threshold`` arms mid-query re-planning (and cardinality
    feedback) on whichever path handles the statements;
    ``feedback_in`` / ``feedback_out`` preload / persist the
    :class:`FeedbackStore` as JSON, so corrections learned by one run
    carry into the next.

    ``enum_tier`` picks the join-enumeration tier policy (``auto``
    sizes the rung to the query's relation count; ``dp`` /
    ``partitioned`` / ``goo`` force a specific tier).
    """
    out = out if out is not None else sys.stdout
    if engine is None:
        engine = "hash" if fast else "reference"
    tracer = Tracer() if (analyze or trace_out is not None) else None
    feedback: FeedbackStore | None = None
    if feedback_in is not None:
        feedback = FeedbackStore.load(feedback_in)
    elif feedback_out is not None or replan_threshold is not None:
        feedback = FeedbackStore()
    service: QueryService | None = None
    if not explain and not analyze and session is None and (
        workers >= 1 or faults or isolation == "process"
    ):
        service = QueryService(
            db,
            catalog=catalog,
            workers=max(1, workers),
            queue_depth=queue_depth,
            budget=budget,
            engine=engine,
            verify=verify,
            verify_seed=verify_seed,
            max_plans=2000,
            fault_plan=FaultPlan.parse(faults, seed=fault_seed) if faults else None,
            feedback=feedback,
            replan_threshold=replan_threshold,
            enum_tier=enum_tier,
            isolation=isolation,
            max_retries=max_retries,
            shm=shm,
        )
    elif session is None:
        session = QuerySession(
            db,
            catalog=catalog,
            budget=budget,
            verify=verify,
            verify_seed=verify_seed,
            executor=engine,
            max_plans=2000,
            feedback=feedback,
            replan_threshold=replan_threshold,
            enum_tier=enum_tier,
        )
    registry: MetricsRegistry | None = None
    if metrics_out is not None:
        registry = service.metrics if service is not None else service_registry()
    code = EXIT_OK
    try:
        statements = parse_statements(text)
        for statement in statements:
            if isinstance(statement, CreateViewStmt):
                catalog.add_view(statement)
                print(f"-- view {statement.name} registered", file=out)
                continue
            assert isinstance(statement, (SelectStmt, UnionStmt))
            translation = translate(statement, catalog)
            if explain:
                _explain(translation, db, out, plans, session)
                continue
            if analyze:
                _analyze(translation, db, out, session, tracer)
                continue
            t0 = time.perf_counter()
            if service is not None:
                outcome = service.run(
                    translation.expr, required_order=translation.order_by
                )
            else:
                with trace_scope(tracer):
                    outcome = session.run(
                        translation.expr,
                        required_order=translation.order_by,
                    )
                if registry is not None:
                    # the service records its own metrics; the plain
                    # session path mirrors the essential ones here
                    registry.counter("repro_admissions_total").inc()
                    registry.counter("repro_queries_total").labels(
                        outcome="ok"
                    ).inc()
                    registry.histogram("repro_query_latency_ms").observe(
                        (time.perf_counter() - t0) * 1000.0
                    )
            result = _order_and_limit(
                outcome.relation, translation, chosen=outcome.chosen
            )
            renamed = _friendly_columns(result, translation.columns)
            ordered = bool(translation.order_by)
            print(renamed.to_text(preserve_order=ordered), file=out)
            print(f"-- {len(renamed)} row(s)", file=out)
            code = max(code, _print_outcome_footers(outcome, verify, out))
            if service is not None and (
                outcome.engine != engine or outcome.attempts
            ):
                rerouted = ", ".join(
                    f"{name}: {error}" for name, error in outcome.attempts
                )
                print(
                    f"-- engine: {outcome.engine}"
                    + (f" (after {rerouted})" if rerouted else ""),
                    file=out,
                )
    finally:
        if service is not None:
            _print_service_footers(service, out)
            service.close()
        if registry is not None:
            if service is not None:
                service.export_metrics()
            else:
                sync_cache_metrics(registry, session.plan_cache)
                sync_engine_metrics(registry)
            text_out = (
                registry.to_json()
                if str(metrics_out).endswith(".json")
                else registry.to_prometheus()
            )
            Path(metrics_out).write_text(text_out)
            print(f"-- metrics written to {metrics_out}", file=out)
        if trace_out is not None and tracer is not None:
            Path(trace_out).write_text(json.dumps(tracer.to_chrome_trace()))
            print(f"-- trace written to {trace_out}", file=out)
        if feedback_out is not None and feedback is not None:
            feedback.save(feedback_out)
            counters = feedback.counters()
            print(
                f"-- feedback written to {feedback_out} "
                f"({counters['entries']} entries, "
                f"generation {counters['generation']})",
                file=out,
            )
    return code


def _sort_key(value):
    # the one NULLS-LAST convention shared with the Sort operator
    from repro.relalg.ordering import value_key

    return value_key(value)


def _order_and_limit(relation: Relation, translation, chosen=None) -> Relation:
    """Apply the statement's ORDER BY / LIMIT presentation directives.

    When the chosen plan already delivers the rows in the requested
    order (an order-aware plan with a Sort enforcer, or an order that
    falls out of the join/grouping structure), the sort is skipped
    entirely.  With a LIMIT, the sort+slice collapses to a single
    top-N selection (``heapq.nsmallest`` under one composite key)
    instead of sorting everything to keep ``limit`` rows.
    """
    from repro.expr.orderprops import order_satisfies, provided_order
    from repro.relalg.ordering import sort_rows, tiebreak_keys, top_n_rows

    rows = list(relation.rows)
    keys = tuple(translation.order_by)
    if keys and chosen is not None and order_satisfies(
        provided_order(chosen), keys
    ):
        keys = ()  # the engine already delivered this order
    if keys:
        # whole-row tiebreak: the printed sequence depends only on the
        # result bag, not on which engine produced it in which order
        keys = tiebreak_keys(keys, relation.real.attrs)
        if translation.limit is not None:
            rows = top_n_rows(rows, keys, translation.limit)
        else:
            rows = sort_rows(rows, keys)
    elif translation.limit is not None:
        rows = rows[: translation.limit]
    return relation.with_rows(rows)


def _friendly_columns(relation: Relation, columns) -> Relation:
    from repro.relalg.operators import project, rename

    attrs = [attr for _, attr in columns]
    unique = list(dict.fromkeys(attrs))
    narrowed = project(relation, unique)
    mapping = {}
    used = set()
    for exposed, attr in columns:
        if attr in mapping or exposed in used:
            continue
        if exposed != attr and exposed not in narrowed.real:
            mapping[attr] = exposed
            used.add(exposed)
    return rename(narrowed, mapping) if mapping else narrowed


def _render_order(order) -> str:
    return ", ".join(f"{a} desc" if d else a for a, d in order) or "(none)"


def _explain(
    translation, db: Database, out, plans: int, session: QuerySession
) -> None:
    from repro.expr.orderprops import provided_order

    expr = translation.expr
    result, level, reason = session.plan(
        expr, required_order=translation.order_by
    )
    print("-- query plan (as written):", file=out)
    print(to_tree(expr), file=out)
    if translation.order_by:
        chosen = expr if result is None else result.best
        print(
            f"-- order: required {_render_order(translation.order_by)}; "
            f"plan provides {_render_order(provided_order(chosen))}",
            file=out,
        )
    if result is None:
        print(f"-- stage: {level.name.lower()}" + (f" ({reason})" if reason else ""), file=out)
        print("-- plans considered : 0 (budget exhausted; original kept)", file=out)
        print("-- chosen plan: the query as written", file=out)
        return
    if level is not DegradationLevel.FULL:
        print(f"-- stage: {level.name.lower()}" + (f" ({reason})" if reason else ""), file=out)
    print(f"-- plans considered : {result.plans_considered}", file=out)
    counters = session.plan_cache.counters()
    print(
        f"-- plan cache       : hits {counters['hits']}, "
        f"misses {counters['misses']}, entries {counters['entries']}",
        file=out,
    )
    print(f"-- estimated cost   : {result.original_cost:.0f} (as written)", file=out)
    print(f"--                    {result.best_cost:.0f} (chosen)", file=out)
    print(
        f"-- measured C_out   : {measured_cost(expr, db)} (as written), "
        f"{measured_cost(result.best, db)} (chosen)",
        file=out,
    )
    print("-- chosen plan:", file=out)
    print(to_tree(result.best), file=out)
    ranked = result.ranked[:plans]
    print(f"-- top {len(ranked)} plans by estimated cost:", file=out)
    for cost, plan in ranked:
        from repro.expr import to_algebra

        print(f"--   {cost:10.0f}  {to_algebra(plan)}", file=out)


def _analyze(
    translation, db: Database, out, session: QuerySession, tracer: Tracer
) -> None:
    """EXPLAIN ANALYZE one statement: est/actual tree + span timings.

    The statement is planned through the session's degradation ladder
    (with the statement's ORDER BY as the required order, so the
    order-aware pass runs exactly as it would for execution), compiled
    to the pull-based physical engine with the cost model as
    cardinality estimator (so every operator carries ``est_rows``),
    executed, and reported as the analyzed operator tree followed by
    the plan-lifecycle spans recorded while doing all of the above.
    """
    from repro.expr.orderprops import provided_order
    from repro.optimizer.cost import CostModel
    from repro.physical import compile_plan, explain_analyze

    expr = translation.expr
    required = tuple(translation.order_by)
    first_root = len(tracer.roots)
    replan_events: list[dict] = []
    with trace_scope(tracer):
        if session.replan_threshold is not None:
            # adaptive path: run through the session so the monitor can
            # trigger mid-query re-plans, then analyze the plan the run
            # actually settled on (post-feedback estimates included)
            with span("session.run"):
                adaptive = session.run(expr, required_order=required)
            chosen = adaptive.chosen
            level = adaptive.degradation_level
            reason = adaptive.degradation_reason
            replan_events = adaptive.replan_events
        else:
            with span("session.plan"):
                result, level, reason = session.plan(
                    expr, required_order=required
                )
            chosen = expr if result is None else result.best
        model = CostModel(session.stats)
        plan = compile_plan(
            chosen, estimator=lambda node: model.estimate(node).rows
        )
        with span("physical.execute"):
            report = explain_analyze(plan, db, timings=True)
    if level is not DegradationLevel.FULL:
        print(
            f"-- stage: {level.name.lower()}"
            + (f" ({reason})" if reason else ""),
            file=out,
        )
    if required:
        print(
            f"-- order: required {_render_order(required)}; "
            f"plan provides {_render_order(provided_order(chosen))}",
            file=out,
        )
    for event in replan_events:
        print(
            f"-- replan: {event.get('outcome', '?')} at {event['site']} "
            f"(est {event['est']:g} rows, actual {event['actual']:g}, "
            f"threshold {event['threshold']:g}x)",
            file=out,
        )
    print(report, file=out)
    print("-- spans:", file=out)
    rendered = tracer.render(roots=tracer.roots[first_root:])
    for line in rendered.splitlines():
        print(f"--   {line}", file=out)


DEMO_SCRIPT = """
create view busy as
  select dept as d, n = count(*) from emp group by dept;
select dname, n from busy left outer join dept on busy.d = dept.did;
"""


def run_demo(out=None) -> None:
    out = out if out is not None else sys.stdout
    db = Database(
        {
            "emp": Relation.base(
                "emp",
                ["eid", "dept", "salary"],
                [(1, 10, 100), (2, 10, 200), (3, 20, 300), (4, 99, 50)],
            ),
            "dept": Relation.base(
                "dept", ["did", "dname"], [(10, "eng"), (20, "ops"), (30, "hr")]
            ),
        }
    )
    catalog = SqlCatalog(
        {"emp": ("eid", "dept", "salary"), "dept": ("did", "dname")}
    )
    print("-- demo: employees per department, outer-joined to names", file=out)
    run_script(DEMO_SCRIPT, db, catalog, out=out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reordering for a general class of queries (SIGMOD 1996)",
        epilog=_EXIT_CODE_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run",
        help="run a SQL script over CSV tables",
        epilog=_EXIT_CODE_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    run_p.add_argument("script", type=Path)
    run_p.add_argument("--data", type=Path, required=True)
    run_p.add_argument(
        "--fast",
        action="store_true",
        help="shorthand for --engine hash (kept for compatibility)",
    )
    run_p.add_argument(
        "--engine",
        choices=("reference", "hash", "vector"),
        default=None,
        help="executor: reference interpreter, row-at-a-time hash "
        "engine, or batch-at-a-time columnar vector engine "
        "(default: reference)",
    )

    explain_p = sub.add_parser("explain", help="show plans instead of rows")
    explain_p.add_argument("script", type=Path)
    explain_p.add_argument("--data", type=Path, required=True)
    explain_p.add_argument("--plans", type=int, default=3)

    for p in (run_p, explain_p):
        p.add_argument(
            "--budget-ms",
            type=float,
            default=None,
            help="per-query wall-clock budget; past it the runtime degrades "
            "(full reorder -> heuristic -> as written) instead of hanging",
        )
        p.add_argument(
            "--max-plans",
            type=int,
            default=None,
            help="hard cap on plans enumerated per query (typed degradation "
            "past it, unlike the soft internal cap)",
        )
        p.add_argument(
            "--max-rows",
            type=int,
            default=None,
            help="cap on cumulative intermediate rows materialized per query",
        )
        p.add_argument(
            "--enum-tier",
            choices=("auto", "dp", "partitioned", "goo"),
            default="auto",
            help="join-enumeration tier: auto sizes the attempt to the "
            "query's relation count (full DP, then partitioned DP, then "
            "greedy operator ordering); dp/partitioned/goo force one tier "
            "(default: auto)",
        )
    run_p.add_argument(
        "--verify",
        action="store_true",
        help="differentially re-check each optimized plan against the "
        "reference interpreter on a row-sample; mismatches are "
        "quarantined and the original plan used",
    )
    run_p.add_argument(
        "--verify-seed",
        type=int,
        default=0,
        help="seed for the verification row-sampler; runs with the same "
        "seed draw identical samples, making quarantine incidents "
        "reproducible",
    )
    run_p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="route statements through the concurrent QueryService with "
        "this many worker threads (admission control, per-engine "
        "circuit breakers, engine fallback); 0 = plain session",
    )
    run_p.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="admission queue bound for the service (load past it is "
        "shed with a typed AdmissionRejected)",
    )
    run_p.add_argument(
        "--isolation",
        choices=("thread", "process"),
        default="thread",
        help="where service workers run: 'thread' (default) keeps them "
        "in this process; 'process' runs each in a supervised child "
        "process (heartbeats, restart with backoff, poisoned-query "
        "quarantine), so a crashing or wedged worker costs one query, "
        "not the service; implies the service path",
    )
    run_p.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="process isolation only: redeliver a query whose worker "
        "died up to N times (queries are read-only, so redelivery is "
        "safe) before surfacing a typed WorkerCrashed (default: 2)",
    )
    run_p.add_argument(
        "--shm",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="process isolation only: share base tables with workers "
        "as zero-copy shared-memory columnar pages instead of pickling "
        "them into every spawn (default: auto-detect; --no-shm forces "
        "the pickle path; unpageable tables always fall back per "
        "table; see docs/SCALING.md)",
    )
    run_p.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help="deterministic fault-injection plan, e.g. "
        "'vector.join:crash@0.05,cache.get:latency=50ms@0.1,"
        "stats:perturb=2x'; with --isolation process, the "
        "'worker:kill9', 'worker:hang' and 'worker:exit' kinds kill, "
        "wedge or hard-exit the worker child itself; implies the "
        "service path so crashes are contained by engine fallback",
    )
    run_p.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the fault plan; same seed + same script = "
        "identical injected faults",
    )
    run_p.add_argument(
        "--analyze",
        action="store_true",
        help="EXPLAIN ANALYZE mode: plan each statement, execute it on "
        "the physical engine, and print the operator tree with "
        "estimated vs actual row counts, per-operator wall time, and "
        "the plan lifecycle's span timings (plain-session path only)",
    )
    run_p.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write a Chrome-trace JSON of every span recorded during "
        "the run (open in chrome://tracing or ui.perfetto.dev); "
        "spans are captured on the plain-session path",
    )
    run_p.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write service metrics at exit: JSON when FILE ends in "
        ".json, Prometheus text exposition format otherwise",
    )
    run_p.add_argument(
        "--replan-threshold",
        type=float,
        default=None,
        metavar="N",
        help="arm adaptive re-optimization: abort and re-plan a query "
        "mid-flight when an operator's actual rows exceed N times its "
        "estimate (N > 1; re-plans are capped and reported in a "
        "`-- replans:` footer)",
    )
    run_p.add_argument(
        "--feedback-in",
        type=Path,
        default=None,
        metavar="FILE",
        help="preload cardinality-feedback corrections from a JSON "
        "file written by a previous run's --feedback-out",
    )
    run_p.add_argument(
        "--feedback-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="persist the cardinality-feedback store as JSON at exit "
        "(observed est/actual corrections, keyed by predicate and "
        "subtree fingerprints)",
    )

    sub.add_parser("demo", help="run a canned demonstration")

    args = parser.parse_args(argv)
    if args.command == "demo":
        run_demo()
        return 0
    db, catalog = load_csv_database(args.data)
    text = args.script.read_text()
    budget = None
    if (
        args.budget_ms is not None
        or args.max_plans is not None
        or args.max_rows is not None
    ):
        budget = Budget(
            deadline_ms=args.budget_ms,
            max_plans=args.max_plans,
            max_rows=args.max_rows,
        )
    # SIGTERM gets the same treatment the default SIGINT handler gives
    # Ctrl-C: a KeyboardInterrupt that unwinds through run_script's
    # ``finally`` (draining and closing the service) instead of dying
    # mid-query with a traceback.  Installed only when this process
    # owns the terminal session (main() as the program entry point).
    import signal as _signal

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    try:
        previous_term = _signal.signal(_signal.SIGTERM, _terminate)
    except ValueError:  # pragma: no cover - non-main thread (embedding)
        previous_term = None
    try:
        if args.command == "run":
            return run_script(
                text,
                db,
                catalog,
                fast=args.fast,
                engine=args.engine,
                budget=budget,
                verify=args.verify,
                verify_seed=args.verify_seed,
                faults=args.faults,
                fault_seed=args.fault_seed,
                workers=args.workers,
                queue_depth=args.queue_depth,
                analyze=args.analyze,
                trace_out=args.trace_out,
                metrics_out=args.metrics_out,
                replan_threshold=args.replan_threshold,
                feedback_in=args.feedback_in,
                feedback_out=args.feedback_out,
                enum_tier=args.enum_tier,
                isolation=args.isolation,
                max_retries=args.max_retries,
                shm=args.shm,
            )
        return run_script(
            text,
            db,
            catalog,
            explain=True,
            plans=args.plans,
            budget=budget,
            enum_tier=args.enum_tier,
        )
    except BudgetExceeded as exc:
        # the row cap is hard even at the last-resort rung (it bounds
        # memory, not optimization effort) -- report it, don't traceback
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_BUDGET
    except (EngineFailure, InjectedFault, WorkerCrashed) as exc:
        # a statement no engine could answer (crash fault plans can
        # reach the reference floor), or a worker died past its retry
        # budget -- report it, don't traceback
        print(f"repro: {exc}", file=sys.stderr)
        return EXIT_ENGINE
    except KeyboardInterrupt:
        # run_script's ``finally`` has already drained and closed the
        # service on the way out; exit with the conventional 128+SIGINT
        print("repro: interrupted; service drained and shut down", file=sys.stderr)
        return EXIT_INTERRUPTED
    finally:
        if previous_term is not None:
            _signal.signal(_signal.SIGTERM, previous_term)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
