"""Logical plan -> physical plan compilation.

Join implementation choice:

* a cross-side equality atom exists -> hash join (default) or merge
  join (``prefer_merge=True``, inner/left only -- right/full fall back
  to hash);
* no equality atom -> nested loop;
* TRUE predicate -> cross product.

Everything else maps one-to-one onto the operator set.

With ``prefer_vector=True`` the planner routes work through the
columnar substrate where batching pays: the *maximal* subtree whose
descendants include a batch-profitable node (join, semi/anti join,
aggregation, union, generalized selection, padding adjustment)
compiles to a single :class:`VectorFragment` executed by
``repro.exec.vector``.  Pure scan/filter/project/rename pipelines
stay pull-based -- they stream with early exit and gain nothing from
materializing columns.
"""

from __future__ import annotations

from typing import Callable

from repro.exec.hash_join import split_equi_conjuncts
from repro.expr.nodes import (
    AdjustPadding,
    BaseRel,
    Expr,
    ExprError,
    GenSelect,
    GroupBy,
    Join,
    JoinKind,
    Project,
    Rename,
    Select,
    SemiJoin,
    Sort,
    UnionAll,
)
from repro.expr.orderprops import provided_order, streaming_run_prefix
from repro.expr.predicates import TRUE
from repro.physical.operators import (
    AdjustPaddingOp,
    HashSemiJoin,
    UnionAllOp,
    CrossProduct,
    Filter,
    GeneralizedSelectionOp,
    HashAggregate,
    HashJoinOp,
    MergeJoinOp,
    NestedLoopJoin,
    PhysicalOperator,
    ProjectOp,
    RenameOp,
    Scan,
    SortOp,
    StreamAggregate,
    VectorFragment,
)
from repro.relalg.generalized_selection import PreservedSpec

#: Node types whose work is dominated by bulk row production --
#: batching them (and everything above them) into a columnar fragment
#: beats pulling rows one at a time.
_BATCH_PROFITABLE = (Join, SemiJoin, GroupBy, GenSelect, UnionAll, AdjustPadding)


def _batch_profitable(expr: Expr) -> bool:
    if isinstance(expr, _BATCH_PROFITABLE):
        return True
    return any(_batch_profitable(child) for child in expr.children())


def _both_sides_ordered(expr: Join, keys) -> bool:
    """Both join inputs already arrive clustered on the equality keys.

    A merge join re-sorts internally under the shared convention, so
    this is a *profitability* test, not a correctness one: when each
    side's provided order leads with its key attributes the internal
    sort degenerates to a linear run-detection pass, and merge beats
    building a hash table.
    """
    left_attrs = {a for a, _ in keys}
    right_attrs = {b for _, b in keys}
    for child, attrs in ((expr.left, left_attrs), (expr.right, right_attrs)):
        order = provided_order(child)
        lead = {a for a, _ in order[: len(attrs)]}
        if lead != attrs:
            return False
    return True


def compile_plan(
    expr: Expr,
    prefer_merge: bool = False,
    prefer_vector: bool = False,
    estimator: "Callable[[Expr], float] | None" = None,
) -> PhysicalOperator:
    """Compile a logical expression into a physical operator tree.

    Args:
        expr: The logical plan to compile.
        prefer_merge: Use sort-merge joins where the kind allows it
            (inner/left); other kinds fall back to hash joins.
        prefer_vector: Hand batch-profitable subtrees to the columnar
            vector engine as a single :class:`VectorFragment`.
        estimator: Optional ``expr -> estimated rows`` callable (e.g.
            ``lambda e: CostModel(stats).estimate(e).rows``).  When
            given, every compiled operator is stamped with
            ``est_rows`` so ``explain_analyze`` can diff estimated
            against actual cardinalities; estimator failures on a node
            leave that node's estimate at ``None``.
    """
    op = _compile_node(expr, prefer_merge, prefer_vector, estimator)
    if estimator is not None and op.est_rows is None:
        try:
            op.est_rows = float(estimator(expr))
        except Exception:
            op.est_rows = None
    return op


def _compile_node(
    expr: Expr,
    prefer_merge: bool,
    prefer_vector: bool,
    estimator: "Callable[[Expr], float] | None",
) -> PhysicalOperator:
    if prefer_vector and _batch_profitable(expr):
        return VectorFragment(expr)
    if isinstance(expr, BaseRel):
        return Scan(expr.name, expr.real_attrs, expr.virtual_attrs)
    if isinstance(expr, Select):
        return Filter(compile_plan(expr.child, prefer_merge, prefer_vector, estimator), expr.predicate)
    if isinstance(expr, Project):
        return ProjectOp(
            compile_plan(expr.child, prefer_merge, prefer_vector, estimator), expr.attrs, expr.distinct
        )
    if isinstance(expr, Rename):
        return RenameOp(
            compile_plan(expr.child, prefer_merge, prefer_vector, estimator), dict(expr.mapping)
        )
    if isinstance(expr, Join):
        left = compile_plan(expr.left, prefer_merge, prefer_vector, estimator)
        right = compile_plan(expr.right, prefer_merge, prefer_vector, estimator)
        if expr.predicate is TRUE and expr.kind is JoinKind.INNER:
            return CrossProduct(left, right)
        keys, residual = split_equi_conjuncts(
            expr.predicate,
            frozenset(left.all_attrs),
            frozenset(right.all_attrs),
        )
        if not keys:
            return NestedLoopJoin(left, right, expr.predicate, expr.kind)
        if expr.kind in (JoinKind.INNER, JoinKind.LEFT) and (
            prefer_merge or _both_sides_ordered(expr, keys)
        ):
            return MergeJoinOp(left, right, keys, residual, expr.kind)
        return HashJoinOp(left, right, keys, residual, expr.kind)
    if isinstance(expr, UnionAll):
        return UnionAllOp(
            compile_plan(expr.left, prefer_merge, prefer_vector, estimator),
            compile_plan(expr.right, prefer_merge, prefer_vector, estimator),
        )
    if isinstance(expr, SemiJoin):
        left = compile_plan(expr.left, prefer_merge, prefer_vector, estimator)
        right = compile_plan(expr.right, prefer_merge, prefer_vector, estimator)
        keys, residual = split_equi_conjuncts(
            expr.predicate,
            frozenset(left.all_attrs),
            frozenset(right.all_attrs),
        )
        return HashSemiJoin(left, right, keys, residual, expr.anti)
    if isinstance(expr, Sort):
        return SortOp(
            compile_plan(expr.child, prefer_merge, prefer_vector, estimator),
            expr.keys,
        )
    if isinstance(expr, GroupBy):
        child = compile_plan(expr.child, prefer_merge, prefer_vector, estimator)
        run = streaming_run_prefix(provided_order(expr.child), expr.group_by)
        if run:
            return StreamAggregate(
                child, expr.group_by, expr.aggregates, expr.name, run
            )
        return HashAggregate(child, expr.group_by, expr.aggregates, expr.name)
    if isinstance(expr, GenSelect):
        specs = [
            PreservedSpec.of(p.name, p.real, p.virtual) for p in expr.preserved
        ]
        return GeneralizedSelectionOp(
            compile_plan(expr.child, prefer_merge, prefer_vector, estimator), expr.predicate, specs
        )
    if isinstance(expr, AdjustPadding):
        return AdjustPaddingOp(
            compile_plan(expr.child, prefer_merge, prefer_vector, estimator), expr.witness, expr.targets
        )
    raise ExprError(f"cannot compile {type(expr).__name__}")
