"""Run physical plans and report EXPLAIN ANALYZE trees."""

from __future__ import annotations

from repro.expr.evaluate import Database
from repro.physical.operators import PhysicalOperator
from repro.relalg.relation import Relation


def run_plan(plan: PhysicalOperator, db: Database) -> Relation:
    """Execute the plan to completion and return the result relation."""
    return plan.to_relation(db)


def explain_analyze(plan: PhysicalOperator, db: Database) -> str:
    """Execute and render the operator tree with actual row counts."""
    result = run_plan(plan, db)
    lines = plan.tree_lines()
    lines.append(f"-- result: {len(result)} row(s)")
    return "\n".join(lines)
