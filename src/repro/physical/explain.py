"""Run physical plans and report EXPLAIN ANALYZE trees."""

from __future__ import annotations

from repro.expr.evaluate import Database
from repro.physical.operators import PhysicalOperator
from repro.relalg.relation import Relation


def run_plan(plan: PhysicalOperator, db: Database) -> Relation:
    """Execute the plan to completion and return the result relation."""
    return plan.to_relation(db)


def explain_analyze(
    plan: PhysicalOperator, db: Database, *, timings: bool = False
) -> str:
    """Execute and render the operator tree with actual row counts.

    Args:
        plan: A compiled physical plan (see
            :func:`repro.physical.planner.compile_plan`).
        db: The database to run against.
        timings: Also show the estimated cardinality (``est=?`` when
            the plan was compiled without an estimator), the
            misestimation ratio (``err=N.Nx`` = actual / estimated,
            shown only when the estimate missed -- the same ratio
            adaptive re-planning thresholds on), and the cumulative
            wall time of every operator subtree.
    """
    result = run_plan(plan, db)
    lines = plan.tree_lines(analyze=timings)
    lines.append(f"-- result: {len(result)} row(s)")
    return "\n".join(lines)
