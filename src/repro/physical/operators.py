"""Pull-based physical operators.

Every operator produces an iterator of :class:`repro.relalg.row.Row`
and records how many rows it emitted (``rows_out``) and how long its
subtree spent producing them (``elapsed_ms``, cumulative: a parent's
time includes the pulls it forwarded to its children).  The planner
may additionally stamp an estimated cardinality (``est_rows``) on each
node so ``explain_analyze`` can diff estimate against actual.
Operators are built by the planner from logical nodes and carry their
output schema (real and virtual attribute orders) so results can be
wrapped back into relations.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Iterator, Sequence

from repro.expr.evaluate import Database
from repro.expr.nodes import JoinKind
from repro.expr.predicates import Predicate
from repro.relalg.aggregates import AggregateSpec
from repro.relalg.generalized_projection import generalized_projection
from repro.relalg.generalized_selection import PreservedSpec
from repro.relalg.nulls import NULL, Truth, is_null
from repro.relalg.ordering import attr_key_fn, tiebreak_keys, value_key
from repro.relalg.relation import Relation, pad_row
from repro.relalg.row import Row
from repro.relalg.schema import Schema
from repro.relalg.streaming import streaming_generalized_projection
from repro.runtime.faults import fault_point
from repro.runtime.metrics import record_engine_counter
from repro.runtime.tracing import span


class PhysicalOperator:
    """Base class: schema metadata, children, and row accounting."""

    def __init__(
        self,
        label: str,
        real: Sequence[str],
        virtual: Sequence[str],
        children: Sequence["PhysicalOperator"] = (),
    ) -> None:
        self.label = label
        self.real = tuple(real)
        self.virtual = tuple(virtual)
        self.children = tuple(children)
        self.rows_out = 0
        #: estimated output cardinality, stamped by the planner when an
        #: estimator is supplied; ``None`` means "not estimated".
        self.est_rows: float | None = None
        #: cumulative wall time spent inside this subtree's ``rows()``.
        self.elapsed_ms = 0.0

    # -- execution --

    def rows(self, db: Database) -> Iterator[Row]:
        self.rows_out = 0
        self.elapsed_ms = 0.0
        produce = self._produce(db)
        while True:
            t0 = time.perf_counter()
            try:
                row = next(produce)
            except StopIteration:
                self.elapsed_ms += (time.perf_counter() - t0) * 1000.0
                return
            self.elapsed_ms += (time.perf_counter() - t0) * 1000.0
            self.rows_out += 1
            yield row

    def _produce(self, db: Database) -> Iterator[Row]:  # pragma: no cover
        raise NotImplementedError

    def to_relation(self, db: Database) -> Relation:
        return Relation(Schema(self.real), Schema(self.virtual), self.rows(db))

    # -- reporting --

    def tree_lines(self, indent: str = "", *, analyze: bool = False) -> list[str]:
        """Indented rendering of the subtree, one operator per line.

        The default format (``label  (rows=N)``) is the stable EXPLAIN
        shape; ``analyze=True`` adds the estimated cardinality
        (``est=?`` when the planner had no estimator), the cumulative
        wall time of the subtree, and -- when the estimate missed --
        the misestimation ratio ``err=N.Nx`` (actual / estimated, the
        quantity adaptive re-planning thresholds on; omitted when the
        estimate was exact or absent).
        """
        if analyze:
            est = "?" if self.est_rows is None else format(self.est_rows, "g")
            err = ""
            if self.est_rows is not None and self.rows_out != self.est_rows:
                ratio = self.rows_out / max(self.est_rows, 1e-9)
                err = f" err={ratio:.1f}x"
            head = (
                f"{indent}{self.label}  "
                f"(est={est} rows={self.rows_out}{err} "
                f"time={self.elapsed_ms:.3f}ms)"
            )
        else:
            head = f"{indent}{self.label}  (rows={self.rows_out})"
        lines = [head]
        for child in self.children:
            lines.extend(child.tree_lines(indent + "  ", analyze=analyze))
        return lines

    @property
    def all_attrs(self) -> tuple[str, ...]:
        return self.real + self.virtual


class Scan(PhysicalOperator):
    """Full scan of a base relation."""

    def __init__(self, name: str, real: Sequence[str], virtual: Sequence[str]):
        super().__init__(f"Scan({name})", real, virtual)
        self.name = name

    def _produce(self, db: Database) -> Iterator[Row]:
        yield from db[self.name].rows


class Filter(PhysicalOperator):
    """Row filter under three-valued logic (TRUE passes)."""

    def __init__(self, child: PhysicalOperator, predicate: Predicate):
        super().__init__(f"Filter[{predicate}]", child.real, child.virtual, (child,))
        self.predicate = predicate

    def _produce(self, db: Database) -> Iterator[Row]:
        for row in self.children[0].rows(db):
            if self.predicate.evaluate(row) is Truth.TRUE:
                yield row


class ProjectOp(PhysicalOperator):
    """Column projection (bag, or distinct without virtuals)."""

    def __init__(self, child: PhysicalOperator, attrs: Sequence[str], distinct: bool):
        virtual = () if distinct else child.virtual
        label = ("Distinct" if distinct else "Project") + f"[{', '.join(attrs)}]"
        super().__init__(label, attrs, virtual, (child,))
        self.distinct = distinct

    def _produce(self, db: Database) -> Iterator[Row]:
        keep = self.all_attrs
        if not self.distinct:
            for row in self.children[0].rows(db):
                yield row.project(keep)
            return
        seen: set[Row] = set()
        for row in self.children[0].rows(db):
            narrowed = row.project(keep)
            if narrowed not in seen:
                seen.add(narrowed)
                yield narrowed


class RenameOp(PhysicalOperator):
    """Attribute renaming."""

    def __init__(self, child: PhysicalOperator, mapping: dict[str, str]):
        real = tuple(mapping.get(a, a) for a in child.real)
        super().__init__(
            "Rename[" + ", ".join(f"{o}->{n}" for o, n in mapping.items()) + "]",
            real,
            child.virtual,
            (child,),
        )
        self.mapping = dict(mapping)

    def _produce(self, db: Database) -> Iterator[Row]:
        child = self.children[0]
        for row in child.rows(db):
            data = {self.mapping.get(a, a): row[a] for a in child.real}
            for a in child.virtual:
                data[a] = row[a]
            yield Row(data)


class NestedLoopJoin(PhysicalOperator):
    """Block nested-loop join; the general fallback for any predicate."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        predicate: Predicate,
        kind: JoinKind,
    ):
        super().__init__(
            f"NestedLoopJoin[{kind.name.lower()}; {predicate}]",
            left.real + right.real,
            left.virtual + right.virtual,
            (left, right),
        )
        self.predicate = predicate
        self.kind = kind

    def _produce(self, db: Database) -> Iterator[Row]:
        left, right = self.children
        inner_rows = list(right.rows(db))
        right_matched = [False] * len(inner_rows)
        target = self.all_attrs
        for row in left.rows(db):
            matched = False
            for index, other in enumerate(inner_rows):
                candidate = row.merge(other)
                if self.predicate.evaluate(candidate) is Truth.TRUE:
                    matched = True
                    right_matched[index] = True
                    yield candidate
            if not matched and self.kind.preserves_left:
                yield pad_row(row, target)
        if self.kind.preserves_right:
            for index, flag in enumerate(right_matched):
                if not flag:
                    yield pad_row(inner_rows[index], target)


class HashJoinOp(PhysicalOperator):
    """Hash join on extracted equality keys, residual filter on probe."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        keys: Sequence[tuple[str, str]],
        residual: Predicate,
        kind: JoinKind,
    ):
        key_text = ", ".join(f"{a}={b}" for a, b in keys)
        super().__init__(
            f"HashJoin[{kind.name.lower()}; {key_text}]",
            left.real + right.real,
            left.virtual + right.virtual,
            (left, right),
        )
        self.keys = tuple(keys)
        self.residual = residual
        self.kind = kind

    def _produce(self, db: Database) -> Iterator[Row]:
        left, right = self.children
        left_keys = [k for k, _ in self.keys]
        right_keys = [k for _, k in self.keys]
        build = list(right.rows(db))
        table: dict[tuple[Any, ...], list[int]] = {}
        for index, row in enumerate(build):
            key = row.values_tuple(right_keys)
            if any(is_null(v) for v in key):
                continue
            table.setdefault(key, []).append(index)
        matched = [False] * len(build)
        target = self.all_attrs
        for row in left.rows(db):
            key = row.values_tuple(left_keys)
            emitted = False
            if not any(is_null(v) for v in key):
                for index in table.get(key, ()):
                    candidate = row.merge(build[index])
                    if self.residual.evaluate(candidate) is Truth.TRUE:
                        emitted = True
                        matched[index] = True
                        yield candidate
            if not emitted and self.kind.preserves_left:
                yield pad_row(row, target)
        if self.kind.preserves_right:
            for index, flag in enumerate(matched):
                if not flag:
                    yield pad_row(build[index], target)


class SortOp(PhysicalOperator):
    """Order enforcer: full sort, or top-N when a limit is pushed in.

    Keys follow the shared NULLS-LAST (ASC) convention from
    :mod:`repro.relalg.ordering`, so the output order is exactly what
    :func:`repro.expr.orderprops.provided_order` promises for the
    logical :class:`~repro.expr.nodes.Sort` node.  With ``limit`` the
    operator keeps a bounded heap (``heapq.nsmallest`` under the same
    composite key) instead of sorting everything -- both are stable,
    so the first ``limit`` rows agree element for element.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        keys: Sequence[tuple[str, bool]],
        limit: int | None = None,
    ):
        key_text = ", ".join(
            f"{a} desc" if d else a for a, d in keys
        )
        label = (
            f"TopN[{limit}; {key_text}]"
            if limit is not None
            else f"Sort[{key_text}]"
        )
        super().__init__(label, child.real, child.virtual, (child,))
        self.keys = tuple((a, bool(d)) for a, d in keys)
        self.limit = limit

    def _produce(self, db: Database) -> Iterator[Row]:
        import heapq

        source = self.children[0].rows(db)
        with span(
            "sort.enforce",
            engine="physical",
            keys=",".join(a for a, _ in self.keys),
        ):
            fault_point("sort", op="enforce")
            keys = tiebreak_keys(self.keys, self.real)
            if self.limit is not None:
                out = heapq.nsmallest(
                    max(self.limit, 0), source, key=attr_key_fn(keys)
                )
            else:
                out = sorted(source, key=attr_key_fn(keys))
        record_engine_counter("repro_sort_rows_total", len(out))
        yield from out


class StreamAggregate(PhysicalOperator):
    """Single-pass aggregation over run-clustered input.

    The planner installs this instead of :class:`HashAggregate` when
    the child's provided order has a prefix inside the group keys:
    each group is then confined to one contiguous run, so flushing
    per-run state is bag-equivalent to hash grouping -- byte-identical
    in fact, including virtual-id numbering (see
    :mod:`repro.relalg.streaming`).
    """

    def __init__(
        self,
        child: PhysicalOperator,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        name: str,
        run_attrs: Sequence[str],
    ):
        real_keys = [a for a in group_by if a in child.real]
        virtual_keys = [a for a in group_by if a in child.virtual]
        real = tuple(real_keys) + tuple(s.output for s in aggregates)
        virtual = tuple(virtual_keys) + (f"#{name}",)
        agg_text = ", ".join(f"{s.output}={s.label()}" for s in aggregates)
        super().__init__(
            f"StreamAggregate[{', '.join(group_by)}; {agg_text}; "
            f"run={', '.join(run_attrs)}]",
            real,
            virtual,
            (child,),
        )
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)
        self.name = name
        self.run_attrs = tuple(run_attrs)

    def _produce(self, db: Database) -> Iterator[Row]:
        child = self.children[0]
        relation = Relation(
            Schema(child.real), Schema(child.virtual), child.rows(db)
        )
        with span(
            "groupby.stream",
            engine="physical",
            run=",".join(self.run_attrs),
        ):
            fault_point("groupby", op="stream")
            out = streaming_generalized_projection(
                relation,
                self.group_by,
                self.aggregates,
                name=self.name,
                run_attrs=self.run_attrs,
            )
        record_engine_counter("repro_streaming_groupby_total")
        yield from out.rows


class MergeJoinOp(PhysicalOperator):
    """Sort-merge join on equality keys (inner and left outer).

    Both inputs are sorted on the key under the shared convention from
    :mod:`repro.relalg.ordering` (equality matching only needs
    grouping, but using *the* convention means input that an upstream
    :class:`SortOp` or order-aware plan already sorted arrives as one
    ascending run, which Timsort recognises in linear time); NULL keys
    never match and are emitted as unmatched when the kind preserves
    their side.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        keys: Sequence[tuple[str, str]],
        residual: Predicate,
        kind: JoinKind,
    ):
        if kind not in (JoinKind.INNER, JoinKind.LEFT):
            raise ValueError("MergeJoinOp supports inner and left outer joins")
        key_text = ", ".join(f"{a}={b}" for a, b in keys)
        super().__init__(
            f"MergeJoin[{kind.name.lower()}; {key_text}]",
            left.real + right.real,
            left.virtual + right.virtual,
            (left, right),
        )
        self.keys = tuple(keys)
        self.residual = residual
        self.kind = kind

    @staticmethod
    def _order_key(values: tuple) -> tuple:
        return tuple(value_key(v) for v in values)

    def _produce(self, db: Database) -> Iterator[Row]:
        left, right = self.children
        left_keys = [k for k, _ in self.keys]
        right_keys = [k for _, k in self.keys]
        target = self.all_attrs

        with span("merge.join", engine="physical"):
            fault_point("merge", op="join")
            left_rows = list(left.rows(db))
            right_rows = list(right.rows(db))

            def splits(rows: list[Row], keys: list[str]):
                keyed, nulls = [], []
                for row in rows:
                    values = row.values_tuple(keys)
                    if any(is_null(v) for v in values):
                        nulls.append(row)
                    else:
                        keyed.append((self._order_key(values), row))
                keyed.sort(key=lambda t: t[0])
                return keyed, nulls

            left_sorted, left_nulls = splits(left_rows, left_keys)
            right_sorted, right_nulls = splits(right_rows, right_keys)

        i = j = 0
        while i < len(left_sorted) and j < len(right_sorted):
            lk = left_sorted[i][0]
            rk = right_sorted[j][0]
            if lk < rk:
                if self.kind.preserves_left:
                    yield pad_row(left_sorted[i][1], target)
                i += 1
            elif lk > rk:
                j += 1
            else:
                # collect the key groups on both sides
                i_end = i
                while i_end < len(left_sorted) and left_sorted[i_end][0] == lk:
                    i_end += 1
                j_end = j
                while j_end < len(right_sorted) and right_sorted[j_end][0] == rk:
                    j_end += 1
                for _, lrow in left_sorted[i:i_end]:
                    emitted = False
                    for _, rrow in right_sorted[j:j_end]:
                        candidate = lrow.merge(rrow)
                        if self.residual.evaluate(candidate) is Truth.TRUE:
                            emitted = True
                            yield candidate
                    if not emitted and self.kind.preserves_left:
                        yield pad_row(lrow, target)
                i, j = i_end, j_end
        if self.kind.preserves_left:
            while i < len(left_sorted):
                yield pad_row(left_sorted[i][1], target)
                i += 1
            for row in left_nulls:
                yield pad_row(row, target)


class HashSemiJoin(PhysicalOperator):
    """Hash semi/anti join: probe for existence only."""

    def __init__(
        self,
        left: "PhysicalOperator",
        right: "PhysicalOperator",
        keys,
        residual: Predicate,
        anti: bool,
    ):
        label = "HashAntiJoin" if anti else "HashSemiJoin"
        key_text = ", ".join(f"{a}={b}" for a, b in keys) or str(residual)
        super().__init__(
            f"{label}[{key_text}]", left.real, left.virtual, (left, right)
        )
        self.keys = tuple(keys)
        self.residual = residual
        self.anti = anti

    def _produce(self, db: Database):
        left, right = self.children
        build = list(right.rows(db))
        if self.keys:
            left_keys = [k for k, _ in self.keys]
            right_keys = [k for _, k in self.keys]
            table: dict = {}
            for row in build:
                key = row.values_tuple(right_keys)
                if not any(is_null(v) for v in key):
                    table.setdefault(key, []).append(row)
            for row in left.rows(db):
                key = row.values_tuple(left_keys)
                matched = False
                if not any(is_null(v) for v in key):
                    for other in table.get(key, ()):  # probe
                        candidate = row.merge(other)
                        if self.residual.evaluate(candidate) is Truth.TRUE:
                            matched = True
                            break
                if matched != self.anti:
                    yield row
            return
        for row in left.rows(db):
            matched = False
            for other in build:
                if self.residual.evaluate(row.merge(other)) is Truth.TRUE:
                    matched = True
                    break
            if matched != self.anti:
                yield row


class HashAggregate(PhysicalOperator):
    """Hash aggregation (delegates grouping to the relalg GP)."""

    def __init__(
        self,
        child: PhysicalOperator,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        name: str,
    ):
        real_keys = [a for a in group_by if a in child.real]
        virtual_keys = [a for a in group_by if a in child.virtual]
        real = tuple(real_keys) + tuple(s.output for s in aggregates)
        virtual = tuple(virtual_keys) + (f"#{name}",)
        agg_text = ", ".join(f"{s.output}={s.label()}" for s in aggregates)
        super().__init__(
            f"HashAggregate[{', '.join(group_by)}; {agg_text}]",
            real,
            virtual,
            (child,),
        )
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)
        self.name = name

    def _produce(self, db: Database) -> Iterator[Row]:
        child = self.children[0]
        relation = Relation(
            Schema(child.real), Schema(child.virtual), child.rows(db)
        )
        out = generalized_projection(
            relation, self.group_by, self.aggregates, name=self.name
        )
        yield from out.rows


class GeneralizedSelectionOp(PhysicalOperator):
    """The paper's σ* as a physical operator: one pass plus padding.

    The child is consumed once; qualifying rows stream through while a
    hash set per preserved group tracks which parts survived.  A
    second pass over the buffered non-qualifying parts emits the
    padding -- the same work profile as a hash outer join (MGOJ), per
    Section 4.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        predicate: Predicate,
        preserved: Sequence[PreservedSpec],
    ):
        names = ", ".join(spec.name for spec in preserved)
        super().__init__(
            f"GeneralizedSelection[{predicate}][{names}]",
            child.real,
            child.virtual,
            (child,),
        )
        self.predicate = predicate
        self.preserved = tuple(preserved)

    def _produce(self, db: Database) -> Iterator[Row]:
        target = self.all_attrs
        orders = {
            spec.name: tuple(
                a
                for a in target
                if a in spec.real_attrs or a in spec.virtual_attrs
            )
            for spec in self.preserved
        }
        surviving: dict[str, set[Row]] = {s.name: set() for s in self.preserved}
        candidates: dict[str, dict[Row, None]] = {
            s.name: {} for s in self.preserved
        }
        for row in self.children[0].rows(db):
            if self.predicate.evaluate(row) is Truth.TRUE:
                for spec in self.preserved:
                    part = spec.part_of(row, orders[spec.name])
                    if part is not None:
                        surviving[spec.name].add(part)
                yield row
            else:
                for spec in self.preserved:
                    part = spec.part_of(row, orders[spec.name])
                    if part is not None:
                        candidates[spec.name][part] = None
        for spec in self.preserved:
            for part in candidates[spec.name]:
                if part not in surviving[spec.name]:
                    yield pad_row(part, target)


class AdjustPaddingOp(PhysicalOperator):
    """COUNT-bug repair after aggregation push-up (row-local)."""

    def __init__(
        self, child: PhysicalOperator, witness: str, targets: Sequence[str]
    ):
        real = tuple(a for a in child.real if a != witness)
        super().__init__(
            f"AdjustPadding[{witness}]", real, child.virtual, (child,)
        )
        self.witness = witness
        self.targets = tuple(targets)

    def _produce(self, db: Database) -> Iterator[Row]:
        keep = self.all_attrs
        for row in self.children[0].rows(db):
            data = {a: row[a] for a in keep}
            if row[self.witness] == 0:
                for target in self.targets:
                    data[target] = NULL
            yield Row(data)


class UnionAllOp(PhysicalOperator):
    """Bag union, padding each side's missing virtual ids with NULL."""

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator):
        seen = set(left.virtual)
        virtual = left.virtual + tuple(a for a in right.virtual if a not in seen)
        super().__init__("UnionAll", left.real, virtual, (left, right))

    def _produce(self, db: Database) -> Iterator[Row]:
        target = self.all_attrs
        for child in self.children:
            for row in child.rows(db):
                yield pad_row(row.project([a for a in row if a in set(target)]), target)


class VectorFragment(PhysicalOperator):
    """A logical subtree handed to the columnar vector engine.

    The fragment boundary is where the pull-based row pipeline stops:
    everything below runs batch-at-a-time on
    :class:`repro.relalg.columnar.ColumnarRelation` (see
    ``repro.exec.vector``) and the materialized result streams out as
    rows.  The planner forms fragments around subtrees that contain at
    least one batch-profitable node (joins, aggregation, generalized
    selection); pure scan/filter/project pipelines stay row-at-a-time
    where streaming with early-exit beats materializing columns.
    """

    def __init__(self, expr) -> None:
        super().__init__(
            f"VectorFragment[{type(expr).__name__}; "
            f"{_count_nodes(expr)} node(s)]",
            expr.real_attrs,
            expr.virtual_attrs,
        )
        self.expr = expr

    def _produce(self, db: Database) -> Iterator[Row]:
        from repro.exec.vector import execute as execute_vector

        yield from execute_vector(self.expr, db).rows


def _count_nodes(expr) -> int:
    return 1 + sum(_count_nodes(child) for child in expr.children())


class CrossProduct(PhysicalOperator):
    """Cartesian product (right side materialized)."""

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator):
        super().__init__(
            "CrossProduct",
            left.real + right.real,
            left.virtual + right.virtual,
            (left, right),
        )

    def _produce(self, db: Database) -> Iterator[Row]:
        left, right = self.children
        inner_rows = list(right.rows(db))
        for row in left.rows(db):
            for other in inner_rows:
                yield row.merge(other)
