"""Physical execution: operator iterators, a physical planner, EXPLAIN.

The logical layer describes *what* to compute; this package chooses
and runs *how*: pull-based operator iterators (scan, filter, hash /
merge / nested-loop join, hash aggregation, the generalized-selection
operator), a planner that picks join implementations from the
predicate shape and statistics, and ``explain_analyze`` reporting
actual row counts per operator -- the paper's Section 4 note that the
generalized selection costs like MGOJ/GOJ becomes concrete here: the
operator is one build + one probe pass, just like a hash outer join.
"""

from repro.physical.operators import (
    MergeJoinOp,
    PhysicalOperator,
    SortOp,
    StreamAggregate,
    VectorFragment,
)
from repro.physical.planner import compile_plan
from repro.physical.explain import explain_analyze, run_plan

__all__ = [
    "MergeJoinOp",
    "PhysicalOperator",
    "SortOp",
    "StreamAggregate",
    "VectorFragment",
    "compile_plan",
    "explain_analyze",
    "run_plan",
]
