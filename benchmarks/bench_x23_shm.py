"""X23 -- shared-memory pages vs pickled databases across the pool.

Not a paper table: this bench prices the zero-copy page path (PR 10).
Under process isolation every worker needs the database; the pickle
path re-serializes it into each child's spawn blob, the shm path maps
it once into named ``multiprocessing.shared_memory`` segments that
children attach for free.  A fixed workload of join+aggregate queries
over three sizable tables runs through ``QueryService`` at 1, 4 and 16
process workers in both transport modes, clean and under a 5%
``worker:kill9`` storm.  The measured window *includes service
construction*, so the page-build cost is charged to shm exactly as the
init-blob tax is charged to pickle.  Tracked per cell: total wall
(construction included), serve-window qps, p50/p99, crashes, retries,
restarts.  Invariants asserted along the way:

* zero wrong answers anywhere -- every result matches the in-process
  vector-engine evaluation of the original query, kill9 storms
  included (each storm also SIGKILLs at least once, and every crashed
  query is salvaged by retry: ``failed == 0``);
* the shm cells actually page (no silent fallback: the snapshot
  reports one segment per table and an empty fallback list) and every
  segment is unlinked at close;
* on boxes with >= 4 CPUs in full mode, shm beats pickle on total wall
  at 4+ workers -- attach-and-go must out-run per-child
  re-serialization of a multi-megabyte database;
* on boxes with >= 4 CPUs in full mode, shm at 4 workers clears 2x the
  1-worker serve-window qps (near-linear scaling; the 16-worker point
  is recorded, not gated -- 24 queries cannot saturate 16 slots).

The two perf gates are full-mode only: the quick workload is small
enough that interpreter spawn dominates both windows, which measures
the box, not the transport.  Quick runs still record the ratios and
enforce every correctness invariant.

Emits ``BENCH_x23_shm.json``.  Quick mode (``REPRO_BENCH_QUICK=1``):
smaller tables, fewer queries, concurrency 1 and 4 only.
"""

import os
import random
import string
import time

from repro.exec import execute_vector
from repro.expr.evaluate import Database, evaluate
from repro.expr.nodes import BaseRel, GroupBy, Join, JoinKind
from repro.expr.predicates import eq
from repro.relalg import Relation
from repro.relalg.aggregates import AggregateFunction, AggregateSpec
from repro.runtime.faults import FaultPlan
from repro.runtime.procpool import ProcPoolConfig
from repro.runtime.service import BreakerConfig, QueryService

from harness import json_record, report, table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

SEED = 42
#: chosen so kill9@0.05 fires on query index 2 (and only there, with no
#: re-fire on the salted retry stream): every storm cell sees exactly
#: one worker death in quick and full mode alike
FAULT_SEED = 15
N_ROWS = 2_000 if QUICK else 8_000
N_QUERIES = 8 if QUICK else 24
CONCURRENCY = (1, 4) if QUICK else (1, 4, 16)
FAULTS = "worker:kill9@0.05"
BEAT_MIN_WORKERS = 4
SCALING_FACTOR = 2.0
SCALING_MIN_CPUS = 4
REFERENCE_SAMPLE_ROWS = 40

POOL = ProcPoolConfig(
    heartbeat_timeout_s=10.0,
    restart_backoff_s=0.01,
    restart_backoff_cap_s=0.05,
    restart_jitter_s=0.0,
)

TABLES = ("r1", "r2", "r3")


def build_database(n_rows: int) -> Database:
    """Three chained tables with unique keys, foreign keys into the
    next table, a small grouping domain, and a string pad column that
    makes the pickled payload sizeable (the cost under test)."""
    rng = random.Random(SEED)
    db = Database()
    for name in TABLES:
        rows = [
            (
                i,
                rng.randrange(n_rows),
                rng.randrange(20),
                "".join(rng.choices(string.ascii_lowercase, k=32)),
            )
            for i in range(n_rows)
        ]
        attrs = [f"{name}_k", f"{name}_fk", f"{name}_grp", f"{name}_pad"]
        db.add(name, Relation.base(name, attrs, rows))
    return db


def build_queries(n_queries: int) -> list:
    """Chain joins r1 -> r2 -> r3 on key columns (bounded output),
    aggregated down to the 20-value grouping domain so the result
    transport is identical and negligible in both transport modes."""
    rng = random.Random(SEED + 1)
    rels = {name: BaseRel(name, (f"{name}_k", f"{name}_fk", f"{name}_grp", f"{name}_pad")) for name in TABLES}
    queries = []
    for qi in range(n_queries):
        kind1 = JoinKind.INNER if rng.random() < 0.7 else JoinKind.LEFT
        kind2 = JoinKind.INNER if rng.random() < 0.7 else JoinKind.LEFT
        core = Join(
            kind2,
            Join(kind1, rels["r1"], rels["r2"], eq("r1_fk", "r2_k")),
            rels["r3"],
            eq("r2_fk", "r3_k"),
        )
        group = rng.choice(("r1_grp", "r2_grp", "r3_grp"))
        agg_arg = rng.choice(("r1_k", "r3_k"))
        queries.append(
            GroupBy(
                core,
                (group,),
                (
                    AggregateSpec("n", AggregateFunction.COUNT),
                    AggregateSpec("s", AggregateFunction.SUM, agg_arg),
                ),
                name=f"g{qi}",
            )
        )
    return queries


def sample_db(db: Database, n: int) -> Database:
    out = Database()
    for name in TABLES:
        rel = db[name]
        out.add(name, Relation(rel.real, rel.virtual, rel.rows[:n]))
    return out


def percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def run_cell(db, queries, truth, workers: int, shm: bool, faults) -> dict:
    """One grid cell.  The clock starts *before* service construction:
    page building (shm) and init-blob assembly (pickle) are part of
    what this bench prices."""
    wrong = 0
    latencies = []
    t0 = time.perf_counter()
    service = QueryService(
        db,
        workers=workers,
        queue_depth=len(queries),
        engine="vector",
        isolation="process",
        shm=shm,
        fault_plan=FaultPlan.parse(faults, seed=FAULT_SEED) if faults else None,
        procpool=POOL,
        breaker=BreakerConfig(failure_threshold=3, window_s=60.0, cooldown_s=60.0),
    )
    t_constructed = time.perf_counter()
    segments = []
    try:
        registry = service._supervisor.page_registry
        if shm:
            assert service.shm_enabled, "shm cell fell back silently"
            assert registry is not None
            segments = registry.segment_names()
            assert len(segments) == len(TABLES)
            assert registry.fallback == {}
        else:
            assert registry is None
        tickets = [service.submit(q) for q in queries]
        for ticket, expected in zip(tickets, truth):
            result = ticket.result(timeout=600)
            latencies.append(result.service_ms)
            if not result.relation.same_content(expected):
                wrong += 1
        wall = time.perf_counter() - t0
    finally:
        service.close()
    for segment in segments:
        assert not os.path.exists(f"/dev/shm/{segment}"), (
            f"segment {segment} leaked past close()"
        )
    snap = service.snapshot()
    pool = snap["procpool"] or {}
    serve_s = wall - (t_constructed - t0)
    return {
        "workers": workers,
        "transport": "shm" if shm else "pickle",
        "faults": faults or "none",
        "queries": len(queries),
        "wall_s": wall,
        "construct_s": t_constructed - t0,
        "qps": len(queries) / wall,
        "serve_qps": len(queries) / serve_s if serve_s > 0 else 0.0,
        "p50_ms": percentile(latencies, 0.50),
        "p99_ms": percentile(latencies, 0.99),
        "wrong": wrong,
        "failed": snap["failed"],
        "crashed": service.incidents.count("worker-crashed"),
        "retries": pool.get("retries", 0),
        "restarts": pool.get("restarts", 0),
        "shm_bytes": (pool.get("shm") or {}).get("bytes", 0),
    }


def run_grid():
    db = build_database(N_ROWS)
    queries = build_queries(N_QUERIES)
    truth = [execute_vector(q, db) for q in queries]

    # tie the fast truth back to paper semantics: on a downsampled
    # database the reference interpreter must agree with the vector
    # engine for every query shape in the workload
    small = sample_db(db, REFERENCE_SAMPLE_ROWS)
    for q in queries:
        assert execute_vector(q, small).same_content(evaluate(q, small))

    cells = []
    for shm in (False, True):
        for workers in CONCURRENCY:
            cells.append(run_cell(db, queries, truth, workers, shm, None))
    for shm in (False, True):
        for workers in CONCURRENCY:
            cells.append(run_cell(db, queries, truth, workers, shm, FAULTS))
    return cells


def _cell(cells, workers, transport, faulted):
    return next(
        c
        for c in cells
        if c["workers"] == workers
        and c["transport"] == transport
        and (c["faults"] != "none") == faulted
    )


def test_x23_shm(benchmark):
    wall0 = time.perf_counter()
    cells = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    wall_time_s = time.perf_counter() - wall0

    # invariant: no wrong answer escaped anywhere in the grid
    assert all(cell["wrong"] == 0 for cell in cells)

    # invariant: every storm killed at least one worker and every
    # crashed query was salvaged by retry on a fresh process
    for transport in ("pickle", "shm"):
        for workers in CONCURRENCY:
            faulted = _cell(cells, workers, transport, True)
            assert faulted["crashed"] >= 1, (
                f"{transport}/{workers}w: kill9 never fired"
            )
            assert faulted["retries"] >= 1
            assert faulted["failed"] == 0

    cpus = len(os.sched_getaffinity(0))
    gates_on = cpus >= SCALING_MIN_CPUS and not QUICK

    # the headline: attach-and-go beats per-child re-serialization at
    # 4+ workers (gated only where the box can actually run 4 children)
    beats = {}
    for workers in CONCURRENCY:
        pickle_cell = _cell(cells, workers, "pickle", False)
        shm_cell = _cell(cells, workers, "shm", False)
        beats[workers] = pickle_cell["wall_s"] / shm_cell["wall_s"]
        if gates_on and workers >= BEAT_MIN_WORKERS:
            assert shm_cell["wall_s"] < pickle_cell["wall_s"], (
                f"{workers}w: shm wall {shm_cell['wall_s']:.2f}s did not "
                f"beat pickle {pickle_cell['wall_s']:.2f}s"
            )

    # near-linear scaling of the shm serve window (construction and
    # spawn excluded -- those are priced by the beat gate above)
    one = _cell(cells, 1, "shm", False)
    four = _cell(cells, 4, "shm", False)
    scaling = four["serve_qps"] / one["serve_qps"]
    if gates_on:
        assert scaling >= SCALING_FACTOR, (
            f"4-worker shm serve qps only {scaling:.2f}x of 1-worker "
            f"on {cpus} CPUs"
        )

    lines = table(
        [
            "workers",
            "transport",
            "faults",
            "wall (s)",
            "construct (s)",
            "qps",
            "serve qps",
            "p50 (ms)",
            "p99 (ms)",
            "crashed",
            "restarts",
        ],
        [
            [
                c["workers"],
                c["transport"],
                c["faults"],
                f"{c['wall_s']:.2f}",
                f"{c['construct_s']:.2f}",
                f"{c['qps']:.1f}",
                f"{c['serve_qps']:.1f}",
                f"{c['p50_ms']:.1f}",
                f"{c['p99_ms']:.1f}",
                c["crashed"],
                c["restarts"],
            ]
            for c in cells
        ],
    )
    lines.append("")
    lines.append(
        f"cpus={cpus} rows/table={N_ROWS} "
        + " ".join(
            f"{w}w pickle/shm wall ratio={beats[w]:.2f}x" for w in CONCURRENCY
        )
        + f" | 4w/1w shm serve scaling={scaling:.2f}x "
        f"(gates {'enforced' if gates_on else 'recorded only'})"
    )
    report("x23_shm", "X23: shm pages vs pickled databases under kill9", lines)
    json_record(
        "x23_shm",
        quick=QUICK,
        wall_time_s=wall_time_s,
        seed=SEED,
        fault_seed=FAULT_SEED,
        n_rows=N_ROWS,
        n_queries=N_QUERIES,
        fault_plan=FAULTS,
        cpus=cpus,
        pickle_over_shm_wall=beats,
        shm_serve_scaling_4w_over_1w=scaling,
        gates_enforced=gates_on,
        wrong_answers=sum(c["wrong"] for c in cells),
        cells=cells,
    )
