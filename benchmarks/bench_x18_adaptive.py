"""X18 -- adaptive re-optimization vs static planning under skewed stats.

Not a paper table: this bench measures what cardinality feedback and
mid-query re-planning buy when the statistics lie.  A three-table
workload whose first join fans out 20x is planned under statistics
skewed by 1x (honest), 10x and 100x, each cell run both statically
(run the misestimated plan to completion, every repetition) and
adaptively (``replan_threshold=4``: abort on the blow-up, re-plan with
observed counts, resume from cached intermediates; later repetitions
plan with the corrected estimates from the start) -- and both clean
and under a ``stats:perturb=8x`` fault plan.

Invariants asserted along the way:

* zero wrong answers in every cell (adaptive resumption and perturbed
  statistics must never change a result);
* honest statistics never trigger a re-plan, and both 10x+ skews do;
* after feedback, the adaptive session's chosen plan is strictly
  cheaper (estimated cost, deterministic) than the plan static
  planning is stuck with;
* wall-clock: adaptive beats static on the misestimated cells and
  stays within the noise allowance on the honest one.

Emits ``BENCH_x18_adaptive.json``.  Quick mode (``REPRO_BENCH_QUICK=1``):
fewer repetitions, clean runs only.
"""

import os
import time

from repro.expr import BaseRel, Database, JoinKind, evaluate
from repro.expr.nodes import Join
from repro.expr.predicates import eq
from repro.optimizer import TableStats
from repro.optimizer.cost import CostModel
from repro.optimizer.stats import Statistics
from repro.relalg import Relation
from repro.runtime import QuerySession, fault_scope
from repro.runtime.faults import FaultPlan

from harness import json_record, report, table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

SEED = 42
SKEWS = (1, 10, 100)
REPEATS = 4 if QUICK else 8
FAULTS = "stats:perturb=8x"
FAULT_MODES = ("clean",) if QUICK else ("clean", "perturbed")
THRESHOLD = 4.0
#: generous wall-clock allowance for the honest cell (noise, not work)
NO_REGRESSION_FACTOR = 1.6

N_R = 600  # r rows, 30 distinct join keys -> r><s fans out 20x
N_T = 60  # t rows, unique keys -> s><t is tiny


def build_workload():
    db = Database(
        {
            "r": Relation.base(
                "r", ["r_a", "r_b"], [(i, i % 30) for i in range(N_R)]
            ),
            "s": Relation.base(
                "s", ["s_b", "s_c"], [(i % 30, i) for i in range(N_R)]
            ),
            "t": Relation.base(
                "t", ["t_c", "t_d"], [(i, i * 2) for i in range(N_T)]
            ),
        }
    )
    r = BaseRel("r", ("r_a", "r_b"))
    s = BaseRel("s", ("s_b", "s_c"))
    t = BaseRel("t", ("t_c", "t_d"))
    query = Join(
        JoinKind.INNER,
        Join(JoinKind.INNER, r, s, eq("r_b", "s_b")),
        t,
        eq("s_c", "t_c"),
    )
    return db, query, evaluate(query, db)


def skewed_stats(skew: int) -> Statistics:
    """Honest statistics at ``skew=1``; past that the join-key distincts
    are inflated ``skew``x (underselling r><s by the same factor) and
    t's cardinality is oversold 50x, the classic stale-catalog shape."""
    if skew == 1:
        return Statistics(
            {
                "r": TableStats(N_R, {"r_a": N_R, "r_b": 30}),
                "s": TableStats(N_R, {"s_b": 30, "s_c": N_R}),
                "t": TableStats(N_T, {"t_c": N_T, "t_d": N_T}),
            }
        )
    return Statistics(
        {
            "r": TableStats(N_R, {"r_a": N_R, "r_b": 30 * skew}),
            "s": TableStats(N_R, {"s_b": 30 * skew, "s_c": N_R}),
            "t": TableStats(50 * N_T, {"t_c": N_R, "t_d": N_R}),
        }
    )


def run_cell(db, query, truth, skew: int, adaptive: bool, faulted: bool) -> dict:
    stats = skewed_stats(skew)
    session = QuerySession(
        db,
        stats=stats,
        executor="vector",
        replan_threshold=THRESHOLD if adaptive else None,
    )
    plan = (
        FaultPlan.parse(FAULTS, seed=SEED + skew) if faulted else None
    )
    wrong = 0
    replans = 0
    t0 = time.perf_counter()
    for i in range(REPEATS):
        if plan is not None:
            with fault_scope(plan.stream(i)):
                result = session.run(query)
        else:
            result = session.run(query)
        replans += result.replans
        if not result.relation.same_content(truth):
            wrong += 1
    wall = time.perf_counter() - t0
    # deterministic cost comparison: what plan does this session settle
    # on, and what would it cost under honest statistics?
    honest = CostModel(skewed_stats(1))
    return {
        "skew": f"{skew}x",
        "mode": "adaptive" if adaptive else "static",
        "faults": FAULTS if faulted else "none",
        "repeats": REPEATS,
        "wall_s": wall,
        "ms_per_query": wall / REPEATS * 1000.0,
        "replans": replans,
        "wrong": wrong,
        "settled_cost": honest.cost(result.chosen),
    }


def run_grid():
    db, query, truth = build_workload()
    cells = []
    for faulted in (mode == "perturbed" for mode in FAULT_MODES):
        for skew in SKEWS:
            for adaptive in (False, True):
                cells.append(
                    run_cell(db, query, truth, skew, adaptive, faulted)
                )
    return cells


def _cell(cells, skew, mode, faults):
    return next(
        c
        for c in cells
        if c["skew"] == f"{skew}x" and c["mode"] == mode and c["faults"] == faults
    )


def test_x18_adaptive(benchmark):
    cells = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    # invariant: no wrong answer anywhere in the grid
    assert all(cell["wrong"] == 0 for cell in cells)

    for faults in ("none",) if QUICK else ("none", FAULTS):
        honest_static = _cell(cells, 1, "static", faults)
        honest_adaptive = _cell(cells, 1, "adaptive", faults)
        # honest stats: nothing to re-plan, and arming the monitor must
        # not cost real wall-clock (generous noise allowance)
        if faults == "none":
            assert honest_adaptive["replans"] == 0
            assert honest_adaptive["wall_s"] <= (
                honest_static["wall_s"] * NO_REGRESSION_FACTOR + 0.05
            )
        for skew in (10, 100):
            static = _cell(cells, skew, "static", faults)
            adaptive = _cell(cells, skew, "adaptive", faults)
            # the perturbed cells only assert containment (zero wrong
            # answers, checked globally): an 8x stats perturbation can
            # legitimately cancel the skew, so whether a re-plan fires
            # there depends on the composition, not on correctness
            if faults != "none":
                continue
            # the misestimation was caught...
            assert adaptive["replans"] >= 1, (skew, faults)
            # ...and the session settled on a strictly cheaper plan
            # than static planning is stuck with (honest-cost metric,
            # fully deterministic)
            assert adaptive["settled_cost"] < static["settled_cost"], (
                skew,
                faults,
            )
            # end-to-end, re-planning beats running the bad plan to
            # completion on every repetition
            assert adaptive["wall_s"] <= static["wall_s"], (skew, faults)

    lines = table(
        ["skew", "mode", "faults", "ms/query", "replans", "settled cost", "wrong"],
        [
            [
                c["skew"],
                c["mode"],
                c["faults"],
                f"{c['ms_per_query']:.2f}",
                c["replans"],
                f"{c['settled_cost']:.0f}",
                c["wrong"],
            ]
            for c in cells
        ],
    )
    report("x18_adaptive", "X18: adaptive vs static under skewed stats", lines)
    json_record(
        "x18_adaptive",
        seed=SEED,
        quick=QUICK,
        repeats=REPEATS,
        threshold=THRESHOLD,
        fault_plan=FAULTS,
        wrong_answers=sum(c["wrong"] for c in cells),
        wall_time_s=sum(c["wall_s"] for c in cells),
        cells=cells,
    )
