"""X17 -- the concurrent query service under load and fault injection.

Not a paper table: this bench measures what the service layer costs
and what the breakers buy.  A fixed workload of join queries is pushed
through :class:`repro.runtime.QueryService` at concurrency 1, 4 and
16, clean and under a 5% vector-crash fault plan, tracking throughput
and the p99 service time.  Invariants asserted along the way:

* zero wrong answers -- every result matches the fault-free reference
  evaluation;
* under faults, the p99 stays within 3x of the clean run at the same
  concurrency (the breaker settles on the hash engine instead of
  paying the crash-and-reroute tax per query).

Emits ``BENCH_x17_service.json``.  Quick mode (``REPRO_BENCH_QUICK=1``):
fewer queries per cell, concurrency 1 and 4 only.
"""

import os
import random

from repro.expr import evaluate
from repro.runtime.faults import FaultPlan
from repro.runtime.service import BreakerConfig, QueryService
from repro.workloads.random_db import random_database, random_join_query

from harness import json_record, report, table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

SEED = 42
N_RELATIONS = 4
N_QUERIES = 12 if QUICK else 48
CONCURRENCY = (1, 4) if QUICK else (1, 4, 16)
FAULTS = "vector:crash@0.05"
P99_FACTOR = 3.0


def build_workload():
    rng = random.Random(SEED)
    names = [f"r{i}" for i in range(1, N_RELATIONS + 1)]
    db = random_database(rng, names, max_rows=12, null_probability=0.1, min_rows=4)
    queries = [
        random_join_query(rng, N_RELATIONS, outer_probability=0.4)
        for _ in range(N_QUERIES)
    ]
    truth = [evaluate(q, db) for q in queries]
    return db, queries, truth


def percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def run_cell(db, queries, truth, workers: int, faults: str | None) -> dict:
    import time

    service = QueryService(
        db,
        workers=workers,
        queue_depth=len(queries),
        engine="vector",
        fault_plan=FaultPlan.parse(faults, seed=SEED) if faults else None,
        breaker=BreakerConfig(failure_threshold=3, window_s=60.0, cooldown_s=60.0),
    )
    wrong = 0
    latencies = []
    rerouted = 0
    t0 = time.perf_counter()
    try:
        tickets = [service.submit(q) for q in queries]
        for ticket, expected in zip(tickets, truth):
            result = ticket.result(timeout=600)
            latencies.append(result.service_ms)
            if result.attempts:
                rerouted += 1
            if not result.relation.same_content(expected):
                wrong += 1
        wall = time.perf_counter() - t0
    finally:
        service.close()
    snap = service.snapshot()
    return {
        "workers": workers,
        "faults": faults or "none",
        "queries": len(queries),
        "wall_s": wall,
        "qps": len(queries) / wall,
        "p50_ms": percentile(latencies, 0.50),
        "p99_ms": percentile(latencies, 0.99),
        "wrong": wrong,
        "rerouted": rerouted,
        "breaker_opens": snap["breakers"]["vector"]["opened_count"],
        "incidents": snap["incidents"],
    }


def run_grid():
    db, queries, truth = build_workload()
    cells = []
    for workers in CONCURRENCY:
        for faults in (None, FAULTS):
            cells.append(run_cell(db, queries, truth, workers, faults))
    return cells


def test_x17_service(benchmark):
    cells = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    # invariant: no wrong answer escaped anywhere in the grid
    assert all(cell["wrong"] == 0 for cell in cells)

    # invariant: at each concurrency, the faulted p99 is within the
    # containment factor of the clean p99 (breakers, not per-query tax)
    for workers in CONCURRENCY:
        clean = next(
            c for c in cells if c["workers"] == workers and c["faults"] == "none"
        )
        faulted = next(
            c for c in cells if c["workers"] == workers and c["faults"] != "none"
        )
        assert faulted["p99_ms"] <= clean["p99_ms"] * P99_FACTOR + 5.0, (
            f"workers={workers}: faulted p99 {faulted['p99_ms']:.1f}ms vs "
            f"clean {clean['p99_ms']:.1f}ms"
        )

    lines = table(
        ["workers", "faults", "qps", "p50 (ms)", "p99 (ms)", "rerouted", "opens"],
        [
            [
                c["workers"],
                c["faults"],
                f"{c['qps']:.0f}",
                f"{c['p50_ms']:.2f}",
                f"{c['p99_ms']:.2f}",
                c["rerouted"],
                c["breaker_opens"],
            ]
            for c in cells
        ],
    )
    report("x17_service", "X17: concurrent service under faults", lines)
    json_record(
        "x17_service",
        seed=SEED,
        n_queries=N_QUERIES,
        fault_plan=FAULTS,
        p99_containment_factor=P99_FACTOR,
        wrong_answers=sum(c["wrong"] for c in cells),
        cells=cells,
    )
