"""X20 -- enumeration tiers past the full-enumeration ceiling.

Not a paper table: the paper's enumerators (the rewrite closure and
the exact subset DP) are exponential in the relation count, and
machine-generated queries at service scale reach 20-60 joins.  This
bench shows the tiered ladder breaking that ceiling:

* at every benched size the *full* DP blows a generous deadline
  (``DeadlineExceeded``), while the partitioned and GOO tiers answer
  in milliseconds;
* at ``n = EXACT_N`` (just above the default full-tier threshold,
  where the exact DP still finishes) the partitioned tier's plan cost
  is recorded as a ratio of the exact optimum -- 1.0 on chains, where
  the linearized refinement recovers the bushy optimum;
* at every size the partitioned tier's estimated C_out (the DP's own
  shape-independent measure, :func:`repro.optimizer.dp.dp_cost`) is
  compared against the System-R left-deep baseline and the greedy
  closure -- strictly better than both at n=20;
* every tier/baseline plan is differentially verified against the
  as-written query on a small database: zero wrong answers.

Emits ``BENCH_x20_tiers.json``.  Quick mode (``REPRO_BENCH_QUICK=1``):
differential verification at n=20 only (the n=40/60 reference
evaluations dominate the full run's wall time).
"""

import os
import random
import time

from repro.errors import BudgetExceeded
from repro.expr import Database, evaluate
from repro.optimizer import Statistics, TableStats, optimize_no_gs
from repro.optimizer.baselines import GREEDY_PLAN_CAP, left_deep_join_order
from repro.optimizer.dp import dp_cost, dp_join_order
from repro.optimizer.tiers import goo_join_order, partitioned_dp_join_order
from repro.relalg import Relation
from repro.runtime import Budget
from repro.workloads.topologies import chain_query

from harness import json_record, report, table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
NS = (20, 40, 60)
#: Largest n where the exact DP still completes comfortably -- the
#: anchor for the tier-quality cost ratios.
EXACT_N = 14
STATS_SEED = 54
#: Generous time for the full DP to prove it cannot finish; quick mode
#: shortens the demonstration (the outcome is identical at n >= 20).
FULL_DP_BUDGET_MS = 400.0 if QUICK else 1500.0
TIER_BUDGET_MS = 5000.0


def chain_stats(n: int, seed: int = STATS_SEED) -> Statistics:
    rng = random.Random(seed)
    stats = Statistics()
    for i in range(1, n + 1):
        rows = rng.choice((10, 100, 1000, 10000))
        stats.add(
            f"r{i}",
            TableStats(rows, {f"r{i}_a0": rows // 2, f"r{i}_a1": rows // 2}),
        )
    return stats


def chain_database(n: int, rows: int = 4) -> Database:
    """Tiny tables whose chain joins stay bounded (for verification)."""
    db = Database()
    for i in range(1, n + 1):
        name = f"r{i}"
        db.add(
            name,
            Relation.base(
                name,
                [f"{name}_a0", f"{name}_a1"],
                [((j + i) % 4, (j + 2 * i) % 4) for j in range(rows)],
            ),
        )
    return db


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, (time.perf_counter() - t0) * 1000.0


def run_suite():
    results = []
    for n in NS:
        query = chain_query(n)
        stats = chain_stats(n)
        row = {"n": n}

        try:
            dp_join_order(
                query, stats, budget=Budget(deadline_ms=FULL_DP_BUDGET_MS)
            )
            row["full_dp"] = "completed"  # pragma: no cover - n >= 20 cannot
        except BudgetExceeded as exc:
            row["full_dp"] = type(exc).__name__

        budget = Budget(deadline_ms=TIER_BUDGET_MS)
        part, row["part_ms"] = _timed(
            lambda: partitioned_dp_join_order(query, stats, budget=budget)
        )
        goo, row["goo_ms"] = _timed(
            lambda: goo_join_order(query, stats, budget=budget)
        )
        left_deep, row["ld_ms"] = _timed(
            lambda: left_deep_join_order(query, stats)
        )
        closure, row["closure_ms"] = _timed(
            lambda: optimize_no_gs(query, stats, max_plans=GREEDY_PLAN_CAP).best
        )
        row["part_cost"] = dp_cost(part, stats)
        row["goo_cost"] = dp_cost(goo, stats)
        row["ld_cost"] = dp_cost(left_deep, stats)
        row["closure_cost"] = dp_cost(closure, stats)

        row["verified"] = "-"
        if n == 20 or not QUICK:
            db = chain_database(n)
            reference = evaluate(query, db)
            row["verified"] = sum(
                not evaluate(plan, db).same_content(reference)
                for plan in (part, goo, left_deep)
            )
        results.append(row)

    # quality anchor: ratios vs the exact optimum where it still runs
    anchor_query = chain_query(EXACT_N)
    anchor_stats = chain_stats(EXACT_N)
    exact = dp_cost(dp_join_order(anchor_query, anchor_stats), anchor_stats)
    anchor = {
        "n": EXACT_N,
        "exact_cost": exact,
        "part_ratio": dp_cost(
            partitioned_dp_join_order(anchor_query, anchor_stats), anchor_stats
        )
        / exact,
        "goo_ratio": dp_cost(
            goo_join_order(anchor_query, anchor_stats), anchor_stats
        )
        / exact,
    }
    return results, anchor


def test_x20_tiers(benchmark):
    t0 = time.perf_counter()
    results, anchor = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    wall_s = time.perf_counter() - t0

    for row in results:
        # the ceiling: full enumeration cannot answer at these sizes ...
        assert row["full_dp"] == "DeadlineExceeded"
        # ... while the tiers answer well inside the same budget
        assert row["part_ms"] < TIER_BUDGET_MS
        assert row["goo_ms"] < TIER_BUDGET_MS
        # the partitioned tier is never worse than either baseline
        assert row["part_cost"] <= row["ld_cost"] + 1e-9
        assert row["part_cost"] <= row["closure_cost"] + 1e-9
        # differential verification: zero wrong answers
        assert row["verified"] in ("-", 0)
    at20 = next(r for r in results if r["n"] == 20)
    # strict wins over both baselines at n=20 (the acceptance bar)
    assert at20["part_cost"] < at20["ld_cost"]
    assert at20["part_cost"] < at20["closure_cost"]
    # quality anchor: partitioned recovers the chain optimum exactly;
    # GOO stays within a small constant factor
    assert anchor["part_ratio"] <= 1.0 + 1e-9
    assert anchor["goo_ratio"] <= 3.0

    lines = table(
        ["n", "full DP", "part C_out", "GOO C_out", "left-deep", "closure-64",
         "part ms", "verified"],
        [
            [
                r["n"],
                r["full_dp"],
                f"{r['part_cost']:.1f}",
                f"{r['goo_cost']:.1f}",
                f"{r['ld_cost']:.1f}",
                f"{r['closure_cost']:.1f}",
                f"{r['part_ms']:.0f}",
                "ok" if r["verified"] == 0 else r["verified"],
            ]
            for r in results
        ],
    )
    lines.append("")
    lines.append(
        f"exact anchor n={anchor['n']}: partitioned/exact = "
        f"{anchor['part_ratio']:.3f}, GOO/exact = {anchor['goo_ratio']:.3f}"
    )
    report(
        "x20_tiers",
        "X20: enumeration tiers vs the ceiling" + (" [quick]" if QUICK else ""),
        lines,
    )
    json_record(
        "x20_tiers",
        wall_time_s=wall_s,
        quick=QUICK,
        sizes={
            str(r["n"]): {
                "full_dp": r["full_dp"],
                "partitioned_cost": r["part_cost"],
                "goo_cost": r["goo_cost"],
                "left_deep_cost": r["ld_cost"],
                "greedy_closure_cost": r["closure_cost"],
                "partitioned_ms": r["part_ms"],
                "goo_ms": r["goo_ms"],
                "verify_mismatches": r["verified"],
            }
            for r in results
        },
        anchor=anchor,
    )
