"""X10 -- ablations of the design choices DESIGN.md calls out.

a) **Provenance rule** (generalized selection): dropping the
   presence rule -- every projected part counts as a tuple of the
   preserved relation -- makes full-outer-join compensation fabricate
   phantom all-NULL rows; we count how many identity-(4) trials fail
   without it (and that none fail with it).

b) **Frequency statistics**: the optimizer's plan choice for the
   Example 1.1 query with and without value-frequency statistics; the
   uniform 1/distinct guess cannot see that `rating = 'BANKRUPT'` is
   selective and keeps the as-written plan.

c) **Outer-join simplification**: closure sizes with and without the
   BHAR95c prerequisite pass; simplification turns outer joins into
   inner joins, which unlocks additional reorderings.
"""

import random

from repro.core.simplify import simplify_outer_joins
from repro.core.transform import enumerate_plans
from repro.expr import BaseRel, evaluate, full_outer, inner, left_outer
from repro.expr.evaluate import _PredicateAdapter
from repro.expr.predicates import eq, make_conjunction
from repro.optimizer import Statistics, TableStats, measured_cost, optimize
from repro.relalg import PreservedSpec, generalized_selection
from repro.relalg import full_outer_join as ra_foj
from repro.relalg import join as ra_join
from repro.workloads.random_db import random_database
from repro.workloads.supplier import supplier_database, supplier_query

from harness import report, table

R1 = BaseRel("r1", ("r1_a0", "r1_a1"))
R2 = BaseRel("r2", ("r2_a0", "r2_a1"))
R3 = BaseRel("r3", ("r3_a0", "r3_a1"))


def ablate_provenance(trials=150):
    """Identity (4) with and without the provenance rule."""
    p12 = eq("r1_a0", "r2_a0")
    p13 = eq("r1_a1", "r3_a1")
    p23 = eq("r2_a1", "r3_a0")
    lhs = full_outer(inner(R1, R2, p12), R3, make_conjunction([p13, p23]))
    rng = random.Random(31)
    failures = {True: 0, False: 0}
    for _ in range(trials):
        db = random_database(rng, ("r1", "r2", "r3"), null_probability=0.1)
        want = evaluate(lhs, db)
        inner_rel = ra_foj(
            ra_join(db["r1"], db["r2"], _PredicateAdapter(p12)),
            db["r3"],
            _PredicateAdapter(p23),
        )
        specs = [
            PreservedSpec.of(
                "r1r2",
                ["r1_a0", "r1_a1", "r2_a0", "r2_a1"],
                ["#r1", "#r2"],
            ),
            PreservedSpec.of("r3", ["r3_a0", "r3_a1"], ["#r3"]),
        ]
        for strict in (True, False):
            got = generalized_selection(
                inner_rel,
                _PredicateAdapter(p13),
                specs,
                strict_provenance=strict,
            )
            if not got.same_content(want):
                failures[strict] += 1
    return failures, trials


def ablate_frequencies():
    """Optimizer pick quality with vs without frequency statistics."""
    rng = random.Random(42)
    db = supplier_database(
        rng, n_suppliers=16, n_parts=6, detail_rows=480, bankrupt_fraction=0.05
    )
    query = supplier_query()
    full_stats = Statistics.from_database(db)
    # strip frequencies: keep only row counts and distincts
    bare_stats = Statistics()
    for name in ("agg94", "detail95", "supdetail"):
        t = full_stats.table(name)
        bare_stats.add(name, TableStats(t.row_count, dict(t.distinct)))
    with_freq = measured_cost(optimize(query, full_stats, max_plans=300).best, db)
    without = measured_cost(optimize(query, bare_stats, max_plans=300).best, db)
    as_written = measured_cost(query, db)
    return as_written, with_freq, without


def ablate_simplification(trials=40):
    """Closure size with and without the simplification prerequisite."""
    p12 = eq("r1_a0", "r2_a0")
    p23 = eq("r2_a1", "r3_a0")
    # (r1 -> r2) join p23 r3: the LOJ is redundant under p23
    q = inner(left_outer(R1, R2, p12), R3, p23)
    raw = enumerate_plans(q, max_plans=4000)
    simplified = enumerate_plans(simplify_outer_joins(q), max_plans=4000)
    # correctness of the simplified closure
    rng = random.Random(17)
    bad = 0
    for _ in range(trials):
        db = random_database(rng, ("r1", "r2", "r3"), null_probability=0.15)
        want = evaluate(q, db)
        for plan in simplified:
            if not evaluate(plan, db).same_content(want):
                bad += 1
                break
    return len(raw), len(simplified), bad, trials


def run_all():
    return {
        "provenance": ablate_provenance(),
        "frequencies": ablate_frequencies(),
        "simplification": ablate_simplification(),
    }


def test_x10_ablations(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    (prov_failures, prov_trials) = results["provenance"]
    assert prov_failures[True] == 0
    assert prov_failures[False] > 0

    as_written, with_freq, without = results["frequencies"]
    assert with_freq <= without <= as_written or with_freq < as_written

    raw, simplified, bad, trials = results["simplification"]
    assert simplified > raw
    assert bad == 0

    lines = table(
        ["ablation", "with the design choice", "without it"],
        [
            [
                "GS provenance rule (identity (4) failures)",
                f"{prov_failures[True]}/{prov_trials}",
                f"{prov_failures[False]}/{prov_trials} (phantom NULL rows)",
            ],
            [
                "frequency statistics (Example 1.1 measured C_out)",
                f"{with_freq} (as-written {as_written})",
                f"{without}",
            ],
            [
                "outer-join simplification (closure plans)",
                f"{simplified}",
                f"{raw}",
            ],
        ],
    )
    lines += [
        "",
        "Each design choice is load-bearing: the provenance rule keeps the",
        "FOJ compensation exact, frequency statistics let the optimizer",
        "see skew, and simplification unlocks reorderings by downgrading",
        "redundant outer joins before enumeration.",
    ]
    report("x10_ablations", "X10: design-choice ablations", lines)
