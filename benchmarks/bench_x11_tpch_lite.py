"""X11 -- TPC-H-lite: the paper's machinery on decision-support queries.

Three query shapes (Q13-style customer distribution, an Example-1.1
style aggregated-view outer join, and a correlated COUNT), optimized
with the full GS pipeline vs the classical no-GS baseline, across two
scale factors.  Reports measured C_out and the plan counts, and checks
every chosen plan against the reference results.
"""

import random

from repro.optimizer import Statistics, measured_cost, optimize
from repro.optimizer.baselines import optimize_no_gs
from repro.expr import evaluate
from repro.sql import parse_statements, translate
from repro.workloads.tpch_lite import ALL_QUERIES, tpch_lite_catalog, tpch_lite_database

from harness import report, table

SCALES = ((20, 6), (60, 10))


def run_suite():
    rows = []
    for customers, suppliers in SCALES:
        rng = random.Random(4)
        db = tpch_lite_database(rng, customers=customers, suppliers=suppliers)
        stats = Statistics.from_database(db)
        for name, script in sorted(ALL_QUERIES.items()):
            catalog = tpch_lite_catalog()
            statements = parse_statements(script)
            for stmt in statements[:-1]:
                catalog.add_view(stmt)
            translation = translate(statements[-1], catalog)
            query = translation.expr
            want = evaluate(query, db)

            with_gs = optimize(query, stats, max_plans=300)
            no_gs = optimize_no_gs(query, stats, max_plans=300)
            same = evaluate(with_gs.best, db).same_content(want)
            from repro.core.pipeline import reorder_pipeline

            plans = reorder_pipeline(query, max_plans=300)
            oracle = min(measured_cost(p, db) for p in plans)
            rows.append(
                {
                    "scale": f"{customers}c/{suppliers}s",
                    "query": name,
                    "as_written": measured_cost(query, db),
                    "gs": measured_cost(with_gs.best, db),
                    "no_gs": measured_cost(no_gs.best, db),
                    "oracle": oracle,
                    "gs_plans": with_gs.plans_considered,
                    "no_gs_plans": no_gs.plans_considered,
                    "same": same,
                }
            )
    return rows


def test_x11_tpch_lite(benchmark):
    rows = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    assert all(r["same"] for r in rows)
    assert all(r["gs_plans"] >= r["no_gs_plans"] for r in rows)
    # the space always keeps the as-written plan: the oracle never loses
    assert all(r["oracle"] <= r["as_written"] for r in rows)
    # at the larger scale the optimizer finds the nation_flow reordering
    big_flow = next(
        r
        for r in rows
        if r["query"] == "nation_flow" and r["scale"].startswith("60")
    )
    assert big_flow["gs"] < big_flow["as_written"]
    lines = table(
        [
            "scale",
            "query",
            "as-written C_out",
            "GS pick",
            "no-GS pick",
            "best in space",
            "GS plans",
            "no-GS plans",
        ],
        [
            [
                r["scale"],
                r["query"],
                r["as_written"],
                r["gs"],
                r["no_gs"],
                r["oracle"],
                r["gs_plans"],
                r["no_gs_plans"],
            ]
            for r in rows
        ],
    )
    lines += [
        "",
        "The GS pipeline searches a superset of the classical space; on",
        "the naive-order nation_flow it reorders to the selective supplier",
        "filter first (152 -> 97 at the larger scale).  Small-scale picks",
        "can miss (estimator noise on tens of rows) -- the 'best in",
        "space' column is the oracle over the enumerated plans.",
    ]
    report("x11_tpch_lite", "X11: TPC-H-lite query suite", lines)
