import sys
from pathlib import Path

# make `harness` importable regardless of invocation directory
sys.path.insert(0, str(Path(__file__).parent))
