"""X8 -- Section 3's Q5/Q6: recursive splitting of several complex predicates.

Q5 has two *independent* complex predicates; Q6 two *dependent* ones
(the paper: break the independent predicate first, then its
dependents).  This bench generates the deferred-expression families
the paper lists, verifies each against the original on randomized
data, and counts the equivalent expressions the closure reaches.
"""

import random

from repro.core.split import defer_conjuncts
from repro.core.transform import enumerate_plans
from repro.expr import (
    BaseRel,
    evaluate,
    full_outer,
    inner,
    left_outer,
)
from repro.expr.predicates import eq, make_conjunction
from repro.workloads.random_db import random_database

from harness import report, table

R = {i: BaseRel(f"r{i}", (f"r{i}_a0", f"r{i}_a1")) for i in range(1, 7)}


def q5():
    """Q5 = (r1 ↔^{p12∧p13} (r2 → r3)) → (r4 →^{p45∧p46} (r5 ⋈ r6))."""
    p12 = eq("r1_a0", "r2_a0")
    p13 = eq("r1_a1", "r3_a1")
    p23 = eq("r2_a1", "r3_a0")
    p24 = eq("r2_a0", "r4_a0")
    p45 = eq("r4_a1", "r5_a1")
    p46 = eq("r4_a0", "r6_a0")
    p56 = eq("r5_a0", "r6_a1")
    left = full_outer(
        R[1], left_outer(R[2], R[3], p23), make_conjunction([p12, p13])
    )
    right = left_outer(R[4], inner(R[5], R[6], p56), make_conjunction([p45, p46]))
    query = left_outer(left, right, p24)
    picks = [((0,), p13), ((1,), p46)]
    return query, picks, tuple(f"r{i}" for i in range(1, 7))


def q6():
    """Q6 = r1 ↔^{p12∧p14} (r2 →^{p23∧p24} (r3 → r4))."""
    p12 = eq("r1_a0", "r2_a0")
    p14 = eq("r1_a1", "r4_a1")
    p23 = eq("r2_a1", "r3_a0")
    p24 = eq("r2_a0", "r4_a0")
    p34 = eq("r3_a1", "r4_a0")
    query = full_outer(
        R[1],
        left_outer(R[2], left_outer(R[3], R[4], p34), make_conjunction([p23, p24])),
        make_conjunction([p12, p14]),
    )
    picks = [((), p14), ((1,), p24)]
    return query, picks, ("r1", "r2", "r3", "r4")


def run_case(query, picks, names, trials=60, seed=9):
    deferred = defer_conjuncts(query, picks)
    rng = random.Random(seed)
    bad = 0
    for _ in range(trials):
        db = random_database(rng, names, null_probability=0.1)
        if not evaluate(deferred, db).same_content(evaluate(query, db)):
            bad += 1
    plans = enumerate_plans(query, max_plans=4000)
    return bad, trials, len(plans)


def run_all():
    out = {}
    for label, case in (("Q5", q5()), ("Q6", q6())):
        query, picks, names = case
        out[label] = run_case(query, picks, names)
    return out


def test_x8_multipredicate(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for label, (bad, trials, plans) in results.items():
        assert bad == 0, f"{label}: {bad} disagreements"
        rows.append([label, f"{bad}/{trials}", plans])
    lines = table(
        ["query", "stacked-GS disagreements", "closure plans"], rows
    )
    lines += [
        "",
        "Both complex predicates of Q5 (independent) and Q6 (dependent,",
        "independent broken first) defer onto a GS stack equivalent to",
        "the original on every randomized database.",
    ]
    report("x8_multipredicate", "X8: Q5/Q6 multi-predicate splitting", lines)
