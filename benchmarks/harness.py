"""Shared helpers for the benchmark suite.

Every bench regenerates one of the paper's tables/figures (or a sweep
its prose argues qualitatively); the rows are printed and also written
to ``benchmarks/results/<bench>.txt`` so ``--benchmark-only`` runs
leave an auditable record.  EXPERIMENTS.md summarizes paper-vs-measured.

Benches that pass ``meta`` (and every caller of :func:`json_record`)
additionally emit ``benchmarks/results/BENCH_<name>.json`` -- a
machine-readable record (name, wall time, plans considered,
degradation level, ...) so the performance trajectory can be tracked
across PRs without parsing ASCII tables.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def json_record(name: str, **fields) -> Path:
    """Write ``BENCH_<name>.json`` with ``{"name": ..., **fields}``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(
        json.dumps({"name": name, **fields}, indent=2, default=str) + "\n"
    )
    return path


def report(
    name: str, title: str, lines: list[str], meta: dict | None = None
) -> str:
    """Print and persist a bench report; returns the rendered text.

    ``meta`` (when given) is also written as ``BENCH_<name>.json``.
    """
    text = "\n".join([f"== {title} ==", *lines, ""])
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    if meta is not None:
        json_record(name, **meta)
    return text


def table(headers: list[str], rows: list[list[object]]) -> list[str]:
    """Render an aligned ASCII table as a list of lines."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    out = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    out += [" | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells]
    return out
