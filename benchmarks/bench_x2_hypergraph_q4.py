"""X2 -- Figure 1 / Example 3.2: Q4's hypergraph and association trees.

Rebuilds the hypergraph of Figure 1 from the Q4 expression, verifies
its structure (h2 is the directed complex hyperedge ⟨{r2},{r4,r5}⟩ and
pres(h2) = {r1, r2}), enumerates association trees under Definition
3.2 and under the BHAR95a baseline, confirms the paper's listed trees,
and spot-checks on data that break-up plans from the rewrite closure
agree with Q4.
"""

import random

from repro.core.assoc_tree import AssocLeaf, AssocNode, association_trees
from repro.core.transform import enumerate_plans
from repro.expr import BaseRel, Database, Join, evaluate, inner, left_outer
from repro.expr.predicates import eq, make_conjunction
from repro.hypergraph import conf, hypergraph_of, pres
from repro.relalg import Relation

from harness import report, table


def q4_expression():
    r1 = BaseRel("r1", ("a1",))
    r2 = BaseRel("r2", ("a2", "b2"))
    r3 = BaseRel("r3", ("a3",))
    r4 = BaseRel("r4", ("a4",))
    r5 = BaseRel("r5", ("a5", "b5", "c5"))
    core = inner(inner(r4, r5, eq("a4", "a5")), r3, eq("a3", "b5"))
    return left_outer(
        r1,
        left_outer(r2, core, make_conjunction([eq("a2", "a4"), eq("b2", "c5")])),
        eq("a1", "a2"),
    )


def random_q4_db(rng):
    schemas = {
        "r1": ["a1"],
        "r2": ["a2", "b2"],
        "r3": ["a3"],
        "r4": ["a4"],
        "r5": ["a5", "b5", "c5"],
    }
    db = Database()
    for name, attrs in schemas.items():
        rows = [
            tuple(rng.choice((1, 2)) for _ in attrs)
            for _ in range(rng.randint(0, 3))
        ]
        db.add(name, Relation.base(name, attrs, rows))
    return db


def run_x2():
    q4 = q4_expression()
    graph = hypergraph_of(q4)
    h2 = next(e for e in graph.edges if e.complex)
    new_trees = association_trees(graph, breakup=True)
    old_trees = association_trees(graph, breakup=False)
    plans = enumerate_plans(q4, max_plans=3000)
    return graph, h2, new_trees, old_trees, plans, q4


def test_x2_hypergraph_q4(benchmark):
    graph, h2, new_trees, old_trees, plans, q4 = benchmark(run_x2)

    # Figure 1 structure
    assert graph.nodes == {"r1", "r2", "r3", "r4", "r5"}
    assert len(graph.edges) == 4
    assert h2.left == {"r2"} and h2.right == {"r4", "r5"} and h2.directed
    assert pres(graph, h2) == {"r1", "r2"}  # the paper's stated pres(h2)
    assert conf(graph, h2) == ()

    def tree(spec):
        if isinstance(spec, str):
            return AssocLeaf(spec)
        return AssocNode(tree(spec[0]), tree(spec[1]))

    new_set = {str(t) for t in new_trees}
    paper_trees = {
        "original": (("r1", "r2"), (("r4", "r5"), "r3")),
        "(r1.r2).(r4.(r5.r3))": (("r1", "r2"), ("r4", ("r5", "r3"))),
        "Q4^2 tree": ("r1", (("r2", "r4"), ("r5", "r3"))),
    }
    for label, spec in paper_trees.items():
        assert str(tree(spec)) in new_set, label
    erratum = str(tree(("r1", (("r2", "r5"), ("r4", "r3")))))
    assert erratum not in new_set  # (r4.r3) is disconnected: paper typo

    # equivalence spot-check on data
    rng = random.Random(2)
    sample = rng.sample(plans, 40)
    for _ in range(8):
        db = random_q4_db(rng)
        want = evaluate(q4, db)
        for plan in sample:
            assert evaluate(plan, db).same_content(want)

    # completeness: the closure realizes exactly the Definition 3.2 space
    def tree_of_plan(expr):
        if isinstance(expr, Join):
            return AssocNode(tree_of_plan(expr.left), tree_of_plan(expr.right))
        if isinstance(expr, BaseRel):
            return AssocLeaf(expr.name)
        return tree_of_plan(expr.children()[0])

    realized = {str(tree_of_plan(p)) for p in plans}
    assert realized == new_set

    lines = ["Hypergraph (Figure 1):", graph.to_text(), ""]
    lines += table(
        ["quantity", "value"],
        [
            ["association trees, Definition 3.2 (break-up)", len(new_trees)],
            ["association trees, BHAR95a Definition 2.3", len(old_trees)],
            ["rewrite-closure plans (operators assigned)", len(plans)],
            [
                "trees realized by the closure",
                f"{len(realized & new_set)}/{len(new_set)} "
                "(exactly the Definition 3.2 space, nothing beyond)",
            ],
            ["pres(h2)", "{r1, r2}  (matches the paper)"],
            [
                "paper tree (r1.((r2.r5).(r4.r3)))",
                "rejected: subtree (r4.r3) induces a disconnected "
                "sub-hypergraph (erratum)",
            ],
        ],
    )
    report("x2_hypergraph_q4", "X2: Figure 1 / Q4 association trees", lines)
