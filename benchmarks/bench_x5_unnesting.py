"""X5 -- Section 1.1 join-aggregate queries: TIS vs unnested vs reordered.

Sweeps |r1| for the paper's doubly nested correlated COUNT query and
reports:

* TIS work (predicate evaluations of the nested loops -- the strategy
  GANS87/MURA92 unnest away from);
* measured C_out of the unnested outer-join/GROUP BY plan (Query 2/3);
* measured C_out of the best reordering of the unnested plan, which
  requires the paper's machinery because the inner correlation
  ``r2.e = r3.e AND r1.f = r3.f`` is a complex predicate.

Results of all three strategies are checked identical.
"""

import random

from repro.core.pipeline import reorder_pipeline
from repro.core.unnest import example_join_aggregate, execute_tis, unnest
from repro.expr import evaluate
from repro.optimizer import Statistics, measured_cost
from repro.optimizer.baselines import tis_cost
from repro.optimizer.cost import estimated_cost
from repro.workloads.nested import nested_query_database

from harness import report, table

SCALES = (1, 2, 3, 4)


def run_sweep():
    query = example_join_aggregate(">", "<")
    plan = unnest(query)
    rows = []
    for scale in SCALES:
        n_r1 = 8 * scale
        rng = random.Random(7)
        db = nested_query_database(rng, n_r1=n_r1, n_r2=8 * scale, n_r3=8 * scale)
        stats = Statistics.from_database(db)
        tis_work = tis_cost(query, db)
        unnested_cost = measured_cost(plan, db)
        candidates = reorder_pipeline(plan, max_plans=600)
        best = min(candidates, key=lambda p: estimated_cost(p, stats))
        best_cost = measured_cost(best, db)
        want = execute_tis(query, db)
        same = (
            evaluate(plan, db).same_content(want)
            and evaluate(best, db).same_content(want)
        )
        rows.append(
            {
                "n_r1": n_r1,
                "tis": tis_work,
                "unnested": unnested_cost,
                "reordered": best_cost,
                "plans": len(candidates),
                "same": same,
            }
        )
    return rows


def test_x5_unnesting(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    assert all(r["same"] for r in rows)
    # shape: the TIS-to-unnested work gap is large and widens with |r1|
    first_gap = rows[0]["tis"] / rows[0]["unnested"]
    last_gap = rows[-1]["tis"] / rows[-1]["unnested"]
    assert last_gap > first_gap
    assert last_gap > 10
    lines = table(
        [
            "|r1|",
            "TIS work",
            "unnested C_out",
            "reordered C_out",
            "plans",
            "equal",
        ],
        [
            [
                r["n_r1"],
                r["tis"],
                r["unnested"],
                r["reordered"],
                r["plans"],
                r["same"],
            ]
            for r in rows
        ],
    )
    lines += [
        "",
        f"TIS does {first_gap:.0f}x the unnested plan's work at |r1|={rows[0]['n_r1']} and",
        f"{last_gap:.0f}x at |r1|={rows[-1]['n_r1']} -- the unnesting",
        "motivation of Section 1.1, with the complex-predicate LOJ made",
        "reorderable by generalized selection.",
        "",
        "Note: under logical C_out the best reordering of the unnested",
        "plan ties the as-unnested order on this data; the paper's",
        "further advantage for joining r2,r3 first presumes an access",
        "path (an index on the inner relations), which a logical cost",
        "measure does not model.  The reordered plan space does contain",
        "those orders (see `plans`).",
    ]
    report("x5_unnesting", "X5: join-aggregate unnesting sweep", lines)
