"""Benchmark regression gate for CI.

Compares a freshly-measured ``BENCH_<name>.json`` against the record
committed in the repository and fails (exit 1) when the measured wall
time exceeds the committed one by more than the allowed factor.
Shared-runner CI boxes are noisy, so the default threshold is a lax
2x -- this gate catches "the enumerator went accidentally quadratic",
not single-digit-percent drift.

Usage::

    python benchmarks/check_regression.py \
        --record benchmarks/results/BENCH_x7_enumeration.json \
        --measured /tmp/bench-out/BENCH_x7_enumeration.json \
        [--factor 2.0]

When the measured run was in quick mode (``"quick": true``) but the
committed record is a full run, the wall times are not comparable;
the gate then only checks that the quick run stayed under the full
record's time (a quick run slower than the full baseline is a
regression in any climate).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"check_regression: {path} does not exist")
    except json.JSONDecodeError as exc:
        sys.exit(f"check_regression: {path} is not valid JSON: {exc}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", type=Path, required=True,
                        help="committed baseline BENCH_*.json")
    parser.add_argument("--measured", type=Path, required=True,
                        help="freshly measured BENCH_*.json")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="fail when measured > factor * record (default 2.0)")
    args = parser.parse_args(argv)

    record = load(args.record)
    measured = load(args.measured)
    if record.get("name") != measured.get("name"):
        sys.exit(
            f"check_regression: comparing different benches "
            f"({record.get('name')!r} vs {measured.get('name')!r})"
        )

    base = float(record["wall_time_s"])
    got = float(measured["wall_time_s"])
    quick_vs_full = measured.get("quick") and not record.get("quick")
    limit = base if quick_vs_full else base * args.factor
    mode = "quick-vs-full" if quick_vs_full else f"{args.factor:.1f}x"

    verdict = "OK" if got <= limit else "REGRESSION"
    print(
        f"{measured['name']}: measured {got:.3f}s vs committed {base:.3f}s "
        f"(limit {limit:.3f}s, mode {mode}) -> {verdict}"
    )
    return 0 if got <= limit else 1


if __name__ == "__main__":
    raise SystemExit(main())
