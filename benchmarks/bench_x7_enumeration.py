"""X7 -- Section 4: enumeration scalability.

The paper argues the machinery drops into a System-R style enumerator
with the preserved/conflict sets computed once.  This bench measures,
per query size: association-tree counting (the DP the paper sketches),
full rewrite-closure enumeration, and single-plan optimization time,
over chain topologies with complex predicates.
"""

import os
import time

from repro.core.assoc_tree import count_association_trees
from repro.core.transform import enumerate_plans
from repro.expr import JoinKind
from repro.hypergraph import hypergraph_of
from repro.optimizer import Statistics, TableStats, optimize
from repro.workloads.topologies import chain_query

from harness import report, table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SIZES = (3, 4, 5) if QUICK else (3, 4, 5, 6)


def default_stats(n: int) -> Statistics:
    stats = Statistics()
    for i in range(1, n + 1):
        stats.add(
            f"r{i}",
            TableStats(100 * i, {f"r{i}_a0": 20, f"r{i}_a1": 20}),
        )
    return stats


def run_scaling():
    rows = []
    for n in SIZES:
        kinds = tuple(
            JoinKind.LEFT if i == 0 else JoinKind.INNER for i in range(n - 1)
        )
        query = chain_query(n, kinds=kinds, complex_every=3)
        graph = hypergraph_of(query)

        t0 = time.perf_counter()
        trees = count_association_trees(graph, breakup=True)
        t_count = time.perf_counter() - t0

        t0 = time.perf_counter()
        plans = enumerate_plans(query, max_plans=6000)
        t_closure = time.perf_counter() - t0

        t0 = time.perf_counter()
        optimize(query, default_stats(n), max_plans=6000)
        t_optimize = time.perf_counter() - t0

        rows.append(
            {
                "n": n,
                "trees": trees,
                "count_ms": t_count * 1000,
                "plans": len(plans),
                "closure_ms": t_closure * 1000,
                "optimize_ms": t_optimize * 1000,
            }
        )
    return rows


def test_x7_enumeration(benchmark):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    assert all(r["trees"] >= 1 for r in rows)
    assert rows[-1]["plans"] > rows[0]["plans"]
    lines = table(
        [
            "relations",
            "assoc trees",
            "tree-count DP (ms)",
            "closure plans",
            "closure (ms)",
            "optimize (ms)",
        ],
        [
            [
                r["n"],
                r["trees"],
                f"{r['count_ms']:.1f}",
                r["plans"],
                f"{r['closure_ms']:.0f}",
                f"{r['optimize_ms']:.0f}",
            ]
            for r in rows
        ],
    )
    report(
        "x7_enumeration",
        "X7: enumeration scalability",
        lines,
        meta={
            "wall_time_s": sum(
                (r["count_ms"] + r["closure_ms"] + r["optimize_ms"]) / 1000
                for r in rows
            ),
            "plans_considered": rows[-1]["plans"],
            "degradation_level": 0,
            "quick": QUICK,
            "sizes": list(SIZES),
        },
    )
