"""X6 -- Definition 3.2's plan space vs the BHAR95a baseline.

The paper's Definition 3.2 admits association trees that break up
complex hyperedges; this bench counts association trees under both
definitions across chain topologies with a complex predicate every
second join, plus the paper's own Q4.  The new definition must be a
strict superset wherever a complex hyperedge exists.
"""

from repro.core.assoc_tree import count_association_trees
from repro.expr import JoinKind
from repro.hypergraph import hypergraph_of
from repro.workloads.topologies import chain_query, star_query

from harness import report, table

CHAIN_SIZES = (3, 4, 5, 6, 7)


def _count(label, graph):
    has_complex = any(e.complex for e in graph.edges)
    return (
        label,
        has_complex,
        count_association_trees(graph, breakup=False),
        count_association_trees(graph, breakup=True),
    )


def run_counts():
    rows = []
    for n in CHAIN_SIZES:
        graph = hypergraph_of(chain_query(n, complex_every=2))
        rows.append(_count(f"chain-{n} (complex every 2nd join)", graph))
    for n in CHAIN_SIZES:
        kinds = tuple(
            JoinKind.LEFT if i % 2 == 0 else JoinKind.INNER
            for i in range(n - 1)
        )
        graph = hypergraph_of(chain_query(n, kinds=kinds, complex_every=2))
        rows.append(_count(f"chain-{n} (mixed LOJ, complex)", graph))
    for n in (3, 4, 5):
        rows.append(_count(f"star-{n} (simple predicates)", hypergraph_of(star_query(n))))
    from bench_x2_hypergraph_q4 import q4_expression

    rows.append(_count("Q4 (Example 3.2)", hypergraph_of(q4_expression())))
    return rows


def test_x6_planspace(benchmark):
    rows = benchmark(run_counts)
    for label, has_complex, old, new in rows:
        if has_complex:
            assert new > old, label
        else:
            assert new == old, label  # no complex edges: nothing to break
    lines = table(
        ["topology", "complex edges", "BHAR95a trees", "Def 3.2 trees", "growth"],
        [
            [label, "yes" if has_complex else "no", old, new, f"{new / max(1, old):.1f}x"]
            for label, has_complex, old, new in rows
        ],
    )
    lines += [
        "",
        "Breaking up complex hyperedges strictly enlarges the searchable",
        "plan space; simple-predicate queries are unchanged, as expected.",
    ]
    report("x6_planspace", "X6: association-tree plan space", lines)
