"""X15 -- cross-query plan caching.

A service re-plans the same parameter-identical statements thousands
of times; the plan cache keyed on (query fingerprint, statistics
version) turns every repeat into a dictionary lookup.  This bench
plans a small workload of chain queries cold (every statement misses)
and then warm (every statement hits), and reports the per-statement
times, the speedup, and the cache counters.  Refreshing statistics
bumps the version and must invalidate -- measured as a third pass.

Quick mode (``REPRO_BENCH_QUICK=1``): smaller queries, fewer repeats.
"""

import os
import time

from repro.expr import Database, JoinKind
from repro.relalg import Relation
from repro.optimizer import TableStats
from repro.runtime import QuerySession
from repro.workloads.topologies import chain_query

from harness import report, table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SIZES = (3, 4) if QUICK else (3, 4, 5)
WARM_REPEATS = 3 if QUICK else 10


def chain_database(n: int, rows: int = 4) -> Database:
    db = Database()
    for i in range(1, n + 1):
        name = f"r{i}"
        db.add(
            name,
            Relation.base(
                name,
                [f"{name}_a0", f"{name}_a1"],
                [(j % 3, (j + i) % 3) for j in range(rows)],
            ),
        )
    return db


def workload():
    queries = []
    for n in SIZES:
        kinds = tuple(
            JoinKind.LEFT if i == 0 else JoinKind.INNER for i in range(n - 1)
        )
        queries.append(chain_query(n, kinds=kinds, complex_every=3))
    return queries


def run_cache_study():
    queries = workload()
    db = chain_database(max(SIZES))
    session = QuerySession(db, max_plans=4000)

    t0 = time.perf_counter()
    for query in queries:
        session.plan(query)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(WARM_REPEATS):
        for query in queries:
            session.plan(query)
    warm_s = (time.perf_counter() - t0) / WARM_REPEATS

    counters = session.plan_cache.counters()

    # statistics refresh bumps the version: everything must re-plan
    session.stats.add("r1", TableStats(1000, {"r1_a0": 10, "r1_a1": 10}))
    t0 = time.perf_counter()
    for query in queries:
        session.plan(query)
    invalidated_s = time.perf_counter() - t0

    return {
        "cold_s": cold_s,
        "warm_s": warm_s,
        "invalidated_s": invalidated_s,
        "speedup": cold_s / warm_s if warm_s else float("inf"),
        "counters": counters,
        "final_counters": session.plan_cache.counters(),
    }


def test_x15_plancache(benchmark):
    out = benchmark.pedantic(run_cache_study, rounds=1, iterations=1)
    counters = out["counters"]
    final = out["final_counters"]
    n_queries = len(SIZES)
    # every warm statement hit; every cold statement missed
    assert counters["misses"] == n_queries
    assert counters["hits"] == n_queries * WARM_REPEATS
    # the stats refresh invalidated: one extra miss per statement
    assert final["misses"] == 2 * n_queries
    # a warm pass must be at least 10x cheaper than the cold pass
    assert out["speedup"] >= 10, f"warm speedup only {out['speedup']:.1f}x"
    lines = table(
        ["pass", "time (ms)", "hits", "misses"],
        [
            ["cold", f"{out['cold_s'] * 1000:.1f}", 0, counters["misses"]],
            [
                "warm (avg of %d)" % WARM_REPEATS,
                f"{out['warm_s'] * 1000:.2f}",
                counters["hits"],
                0,
            ],
            [
                "after stats refresh",
                f"{out['invalidated_s'] * 1000:.1f}",
                final["hits"] - counters["hits"],
                final["misses"] - counters["misses"],
            ],
        ],
    )
    lines.append(f"warm speedup: {out['speedup']:.0f}x over cold planning")
    report(
        "x15_plancache",
        "X15: cross-query plan cache",
        lines,
        meta={
            "wall_time_s": out["cold_s"] + out["warm_s"] + out["invalidated_s"],
            "cold_s": out["cold_s"],
            "warm_s": out["warm_s"],
            "speedup": out["speedup"],
            "counters": final,
            "quick": QUICK,
            "sizes": list(SIZES),
        },
    )
