"""X4 -- Example 1.1: aggregate-first vs join-first on the supplier data.

The paper argues: executed as written, the aggregation over the whole
of ``detail95`` runs before the outer join; when the ``BANKRUPT``
filter is selective, combining the relations first and aggregating at
the root wins.  This bench sweeps the bankrupt fraction and reports
*measured* C_out (true intermediate cardinalities) for the as-written
plan and for the optimizer's GS-reordered plan, plus the crossover.
"""

import random

from repro.core.pipeline import reorder_pipeline
from repro.expr import evaluate
from repro.optimizer import Statistics, measured_cost, optimize
from repro.workloads.supplier import supplier_database, supplier_query

from harness import report, table

FRACTIONS = (0.05, 0.1, 0.25, 0.5, 1.0)


def run_sweep():
    rows = []
    query = supplier_query()
    for fraction in FRACTIONS:
        rng = random.Random(42)
        db = supplier_database(
            rng,
            n_suppliers=16,
            n_parts=6,
            detail_rows=480,
            bankrupt_fraction=fraction,
        )
        stats = Statistics.from_database(db)
        result = optimize(query, stats, max_plans=400)
        as_written_cost = measured_cost(query, db)
        chosen_cost = measured_cost(result.best, db)
        # the oracle: the truly cheapest plan in the space (the space
        # includes the as-written shape, so the oracle never loses)
        plans = reorder_pipeline(query, max_plans=400)
        oracle_cost = min(measured_cost(p, db) for p in plans)
        same = evaluate(result.best, db).same_content(evaluate(query, db))
        rows.append(
            {
                "fraction": fraction,
                "as_written": as_written_cost,
                "chosen": chosen_cost,
                "oracle": oracle_cost,
                "ratio": as_written_cost / max(1, oracle_cost),
                "same": same,
                "plans": result.plans_considered,
            }
        )
    return rows


def test_x4_supplier(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    assert all(r["same"] for r in rows)
    # the paper's claim: at low bankrupt fractions, join-first wins
    assert rows[0]["oracle"] < rows[0]["as_written"]
    # the advantage shrinks as selectivity worsens
    assert rows[0]["ratio"] > rows[-1]["ratio"]
    # the space always contains the as-written shape: no regression
    assert all(r["oracle"] <= r["as_written"] for r in rows)
    lines = table(
        [
            "bankrupt fraction",
            "as-written C_out",
            "optimizer pick",
            "best in space",
            "best speedup",
            "plans",
            "equal",
        ],
        [
            [
                f"{r['fraction']:.2f}",
                r["as_written"],
                r["chosen"],
                r["oracle"],
                f"{r['ratio']:.2f}x",
                r["plans"],
                r["same"],
            ]
            for r in rows
        ],
    )
    lines += [
        "",
        "Shape check: join-first (GS-reordered, aggregation pushed to the",
        "root) wins while the BANKRUPT filter is selective; the advantage",
        "shrinks toward parity as selectivity degrades -- the paper's",
        "qualitative claim.  The plan space retains the as-written shape,",
        "so the enumeration never regresses ('best in space' column).",
    ]
    report("x4_supplier", "X4: Example 1.1 selectivity sweep", lines)
