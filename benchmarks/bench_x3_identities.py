"""X3 -- Section 3.1: identities (1)-(8) verified on randomized data.

Each identity's two sides are evaluated on hundreds of randomized
databases (with NULLs and empty relations); the table reports the
disagreement count -- zero for all eight in our corrected form, and
demonstrably non-zero for identity (6) exactly as printed (the
``r2r3`` preserved argument over-preserves; see DESIGN.md).
"""

import random

from repro.core.identities import (
    identity_1,
    identity_2,
    identity_3,
    identity_4,
    identity_5,
    identity_6,
    identity_6_as_printed,
    identity_7,
    identity_8,
)
from repro.expr import BaseRel, JoinKind, evaluate
from repro.expr.predicates import eq
from repro.workloads.random_db import random_database

from harness import report, table

R1 = BaseRel("r1", ("r1_a0", "r1_a1"))
R2 = BaseRel("r2", ("r2_a0", "r2_a1"))
R3 = BaseRel("r3", ("r3_a0", "r3_a1"))
R4 = BaseRel("r4", ("r4_a0", "r4_a1"))

p12 = eq("r1_a0", "r2_a0")
p12b = eq("r1_a1", "r2_a1")
p13 = eq("r1_a1", "r3_a1")
p23 = eq("r2_a1", "r3_a0")
p23b = eq("r2_a0", "r3_a1")
p24 = eq("r2_a1", "r4_a0")

TRIALS = 200


def check(pair, names, seed=3):
    lhs, rhs = pair
    rng = random.Random(seed)
    bad = 0
    for _ in range(TRIALS):
        db = random_database(rng, names, null_probability=0.1)
        if not evaluate(rhs, db).same_content(evaluate(lhs, db)):
            bad += 1
    return bad


def run_all():
    cases = [
        ("(1) loj split [r1]", identity_1(R1, R2, p12, p12b), ("r1", "r2")),
        ("(2) foj split [r1,r2]", identity_2(R1, R2, p12, p12b), ("r1", "r2")),
        (
            "(3) (r1 join r2) -> r3 [r1r2]",
            identity_3(R1, R2, R3, JoinKind.INNER, p12, p13, p23),
            ("r1", "r2", "r3"),
        ),
        (
            "(3') (r1 -> r2) -> r3 [r1r2]",
            identity_3(R1, R2, R3, JoinKind.LEFT, p12, p13, p23),
            ("r1", "r2", "r3"),
        ),
        (
            "(4) (r1 join r2) <-> r3 [r1r2, r3]",
            identity_4(R1, R2, R3, JoinKind.INNER, p12, p13, p23),
            ("r1", "r2", "r3"),
        ),
        (
            "(5) r1 -> (r2 join r3) [r1]",
            identity_5(R1, R2, R3, p12, p23, p23b),
            ("r1", "r2", "r3"),
        ),
        (
            "(6) corrected [r1]",
            identity_6(R1, R2, R3, p12, p23, p23b),
            ("r1", "r2", "r3"),
        ),
        (
            "(6) AS PRINTED [r1, r2r3]",
            identity_6_as_printed(R1, R2, R3, p12, p23, p23b),
            ("r1", "r2", "r3"),
        ),
        (
            "(7) r1 <-> (r2 <- r3) [r1, r3]",
            identity_7(R1, R2, R3, p12, p23, p23b),
            ("r1", "r2", "r3"),
        ),
        (
            "(8) r1 <-> ((r2 join r3) <- r4) [r1, r4]",
            identity_8(R1, R2, R3, R4, p12, p23, p23b, p24),
            ("r1", "r2", "r3", "r4"),
        ),
    ]
    return [(label, check(pair, names)) for label, pair, names in cases]


def test_x3_identities(benchmark):
    results = benchmark(run_all)
    for label, bad in results:
        if "AS PRINTED" in label:
            assert bad > 0, "the printed identity (6) should disagree"
        else:
            assert bad == 0, f"{label}: {bad} disagreements"
    rows = [
        [label, f"{bad}/{TRIALS}", "ERRATUM" if "AS PRINTED" in label else "ok"]
        for label, bad in results
    ]
    lines = table(["identity", "disagreements", "verdict"], rows)
    report("x3_identities", "X3: identities (1)-(8) on randomized data", lines)
