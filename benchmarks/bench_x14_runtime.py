"""X14 -- the resilient runtime's overhead and degradation behavior.

Not a paper table: this bench tracks the cost of routing queries
through :class:`repro.runtime.QuerySession` (budget checkpoints,
verification) and demonstrates that a starved budget degrades in
bounded time instead of hanging.  Emits ``BENCH_x14_runtime.json``
with the machine-readable trajectory record.
"""

import time

from repro.expr import Database, evaluate
from repro.relalg import Relation
from repro.runtime import Budget, DegradationLevel, QuerySession
from repro.workloads.topologies import chain_query

from harness import json_record, report, table

N = 5
ROWS = 40


def chain_database(n: int, rows: int) -> Database:
    db = Database()
    for i in range(1, n + 1):
        name = f"r{i}"
        db.add(
            name,
            Relation.base(
                name,
                [f"{name}_a0", f"{name}_a1"],
                [(j % 7, (j + i) % 7) for j in range(rows)],
            ),
        )
    return db


def run_modes():
    query = chain_query(N, complex_every=3)
    db = chain_database(N, ROWS)
    modes = [
        ("bare evaluate", None, False, None),
        ("session, no budget", None, True, None),
        ("session + verify", None, True, "verify"),
        ("session, starved plans", Budget(max_plans=8), True, None),
        ("session, starved deadline", Budget(deadline_ms=1.0), True, None),
    ]
    results = []
    for label, budget, use_session, extra in modes:
        t0 = time.perf_counter()
        if not use_session:
            relation = evaluate(query, db)
            level, plans = "-", 0
        else:
            session = QuerySession(
                db, budget=budget, verify=(extra == "verify"), max_plans=2000
            )
            outcome = session.run(query)
            relation = outcome.relation
            level = outcome.degradation_level.name.lower()
            plans = outcome.plans_considered
        elapsed = time.perf_counter() - t0
        results.append(
            {
                "mode": label,
                "rows": len(relation),
                "level": level,
                "plans": plans,
                "ms": elapsed * 1000,
            }
        )
    return results


def test_x14_runtime(benchmark):
    results = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    # every mode returns the same bag of rows
    assert len({r["rows"] for r in results}) == 1
    # the starved runs degraded instead of hanging
    assert results[3]["level"] in ("greedy", "heuristic", "as_written")
    lines = table(
        ["mode", "rows", "stage", "plans", "wall (ms)"],
        [
            [r["mode"], r["rows"], r["level"], r["plans"], f"{r['ms']:.1f}"]
            for r in results
        ],
    )
    report("x14_runtime", "X14: resilient runtime overhead", lines)
    full = next(r for r in results if r["mode"] == "session, no budget")
    starved = next(r for r in results if r["mode"] == "session, starved plans")
    json_record(
        "x14_runtime",
        wall_time_s=sum(r["ms"] for r in results) / 1000,
        plans_considered=full["plans"],
        degradation_level=int(DegradationLevel[starved["level"].upper()]),
        modes={r["mode"]: r["ms"] for r in results},
    )
