"""X1 -- Example 2.1: the paper's worked tables T1 and T2, row for row.

Reproduces the three input relations, evaluates
``(r1 → r2) →^{p13∧p23} r3`` (table T1) and ``(r1 → r2) →^{p23} r3``
(table T2), and shows that ``σ*_{p13}[r1r2]`` compensates T2 back to
T1 exactly.  Also records the T2 erratum: the printed T2 omits the two
cross-match rows.
"""

from repro.expr import (
    BaseRel,
    Database,
    GenSelect,
    evaluate,
    left_outer,
    preserved_for,
)
from repro.expr.predicates import eq, make_conjunction
from repro.relalg import Relation

from harness import report

R1 = BaseRel("r1", ("a", "b", "c", "f"))
R2 = BaseRel("r2", ("c2", "d", "e"))
R3 = BaseRel("r3", ("e3", "f3"))

P12 = eq("c", "c2")
P13 = eq("f", "f3")
P23 = eq("e", "e3")


def example_database() -> Database:
    return Database(
        {
            "r1": Relation.base(
                "r1",
                ["a", "b", "c", "f"],
                [
                    ("a1", "b1", "c1", "f1"),
                    ("a2", "b1", "c1", "f2"),
                    ("a2", "b1", "c2", "f2"),
                ],
            ),
            "r2": Relation.base("r2", ["c2", "d", "e"], [("c1", "d1", "e1")]),
            "r3": Relation.base(
                "r3", ["e3", "f3"], [("e1", "f1"), ("e1", "f3")]
            ),
        }
    )


def run_example() -> dict:
    db = example_database()
    r1r2 = left_outer(R1, R2, P12)
    t1_expr = left_outer(r1r2, R3, make_conjunction([P13, P23]))
    t2_expr = left_outer(r1r2, R3, P23)
    compensated_expr = GenSelect(
        t2_expr, P13, (preserved_for(t2_expr, {"r1", "r2"}),)
    )
    t1 = evaluate(t1_expr, db)
    t2 = evaluate(t2_expr, db)
    compensated = evaluate(compensated_expr, db)
    return {
        "t1": t1,
        "t2": t2,
        "compensated": compensated,
        "match": compensated.same_content(t1),
    }


def test_x1_example21(benchmark):
    result = benchmark(run_example)
    assert result["match"], "GS compensation must reproduce T1"
    assert len(result["t1"]) == 3  # exactly the paper's three T1 rows
    assert len(result["t2"]) == 5  # corrected T2 (paper prints only 3)
    lines = [
        "T1 = (r1 -> r2) ->[p13 ^ p23] r3   (paper's table T1):",
        result["t1"].to_text(),
        "",
        "T2 = (r1 -> r2) ->[p23] r3   (corrected; the printed T2 omits",
        "the two cross-match rows -- a left outer join on p23 alone",
        "matches BOTH r3 tuples for each of the first two r1r2 rows):",
        result["t2"].to_text(),
        "",
        "sigma*_[p13][r1r2](T2):",
        result["compensated"].to_text(),
        "",
        f"compensated == T1 (row for row): {result['match']}",
    ]
    report("x1_example21", "X1: Example 2.1 tables", lines)
