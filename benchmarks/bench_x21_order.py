"""X21 -- order-aware planning: streaming vs hashing, orders in the DP.

Not a paper table: the paper costs joins alone, but its C_out measure
extends naturally to order enforcers (Guravannavar's partial-sort
discount, Szlichta's equality-derived free orders -- see PAPERS.md).
This bench makes the order machinery pay its way:

* **streaming aggregation** -- grouped SUM over 100k pre-sorted rows,
  hash grouping vs the run-boundary streaming pass the vector engine
  takes when the input order covers the group keys.  The acceptance
  bar is >= 2x, with byte-identical output;
* **merge vs hash join** -- pair generation over key-sorted inputs at
  10k-100k rows/side, the run-merging two-pointer pass vs build+probe,
  identical pair lists required;
* **orders in the DP** -- on chain topologies, the Pareto DP's plan
  under a required order is never costlier than the order-blind
  optimum plus one root sort (the fallback it can always take), and
  its advantage over that fallback is recorded;
* **differential gate** -- ordered random queries across all three
  engines: zero mismatches, exact output sequences.

Emits ``BENCH_x21_order.json``.  Quick mode (``REPRO_BENCH_QUICK=1``)
shrinks the scales; the >= 2x aggregation bar is asserted only at the
full 100k scale where constant overheads have died out.
"""

import os
import random
import time

from repro.exec import execute, execute_vector
from repro.exec.vector import _group_by, _group_by_sorted, _hash_pairs, _merge_pairs
from repro.expr import evaluate
from repro.expr.nodes import Sort
from repro.expr.orderprops import order_satisfies, provided_order
from repro.optimizer import Statistics, TableStats
from repro.optimizer.cost import CostModel, sort_penalty
from repro.optimizer.dp import dp_cost, dp_join_order, dp_join_order_pareto
from repro.optimizer.orders import equality_classes
from repro.relalg.aggregates import AggregateFunction, AggregateSpec
from repro.relalg.columnar import ColumnarRelation
from repro.relalg.schema import Schema
from repro.workloads.random_db import random_database, random_join_query
from repro.workloads.topologies import chain_query

from harness import json_record, report, table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
AGG_N = 10_000 if QUICK else 100_000
AGG_GROUPS = 200
JOIN_NS = (5_000, 10_000) if QUICK else (10_000, 30_000, 100_000)
JOIN_DUP = 4  # average rows per key value on each side
DP_SIZES = (3, 4, 5, 6)
DIFF_TRIALS = 4 if QUICK else 10
SEED = 2101


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, (time.perf_counter() - t0) * 1000.0


def _sorted_agg_input(n: int) -> ColumnarRelation:
    """Pre-sorted (clustered) group keys with a payload column."""
    rng = random.Random(SEED)
    keys = sorted(rng.randrange(AGG_GROUPS) for _ in range(n))
    values = [rng.randrange(1000) for _ in range(n)]
    return ColumnarRelation(
        Schema(("g", "v")), Schema(()), {"g": keys, "v": values}, n
    )


def bench_aggregation() -> dict:
    child = _sorted_agg_input(AGG_N)
    # SUM, not COUNT: COUNT(*)-only grouping has its own C-level fast
    # path in the hash operator, which would understate hashing's
    # per-row dict cost on the aggregate shapes that matter
    specs = (AggregateSpec("s", AggregateFunction.SUM, "v"),)
    hashed, hash_ms = _timed(lambda: _group_by(child, ("g",), specs, "g1"))
    streamed, stream_ms = _timed(
        lambda: _group_by_sorted(child, ("g",), specs, "g1", ("g",))
    )
    same = (
        hashed.gather("g") == streamed.gather("g")
        and hashed.gather("s") == streamed.gather("s")
        and hashed.gather("#g1") == streamed.gather("#g1")
    )
    return {
        "rows": AGG_N,
        "groups": AGG_GROUPS,
        "hash_ms": hash_ms,
        "stream_ms": stream_ms,
        "speedup": hash_ms / stream_ms if stream_ms else float("inf"),
        "identical": same,
    }


def _sorted_join_side(n: int, prefix: str, rng: random.Random) -> dict:
    keys = sorted(rng.randrange(max(1, n // JOIN_DUP)) for _ in range(n))
    return {f"{prefix}_k": keys, f"{prefix}_p": list(range(n))}


def bench_joins() -> list[dict]:
    out = []
    for n in JOIN_NS:
        rng = random.Random(SEED + n)
        lcols = _sorted_join_side(n, "l", rng)
        rcols = _sorted_join_side(n, "r", rng)
        keys = (("l_k", "r_k"),)
        (h_li, h_ri), hash_ms = _timed(
            lambda: _hash_pairs(lcols, rcols, n, keys)
        )
        (m_li, m_ri), merge_ms = _timed(
            lambda: _merge_pairs(lcols, rcols, keys)
        )
        out.append(
            {
                "n": n,
                "pairs": len(h_li),
                "hash_ms": hash_ms,
                "merge_ms": merge_ms,
                "identical": (h_li, h_ri) == (m_li, m_ri),
            }
        )
    return out


def _chain_stats(n: int, seed: int) -> Statistics:
    rng = random.Random(seed)
    stats = Statistics()
    for i in range(1, n + 1):
        rows = rng.choice((10, 100, 1000))
        stats.add(
            f"r{i}",
            TableStats(rows, {f"r{i}_a0": rows // 2, f"r{i}_a1": rows // 2}),
        )
    return stats


def bench_dp_orders() -> list[dict]:
    out = []
    for n in DP_SIZES:
        for seed in (1, 2):
            query = chain_query(n)
            stats = _chain_stats(n, seed)
            required = (("r1_a0", False),)
            model = CostModel(stats)
            blind = dp_join_order(query, stats)
            root_rows = model.estimate(blind).rows
            fallback = dp_cost(blind, stats) + sort_penalty(
                root_rows, root_rows or 1.0
            )
            plan, cost = dp_join_order_pareto(
                query, stats, required=required
            )
            satisfied = order_satisfies(
                provided_order(plan), required, equality_classes(query)
            )
            out.append(
                {
                    "n": n,
                    "seed": seed,
                    "aware_cost": cost,
                    "blind_plus_sort": fallback,
                    "ratio": cost / fallback if fallback else 1.0,
                    "satisfied": satisfied,
                }
            )
    return out


def bench_differential() -> dict:
    """Ordered random queries: engines must agree on the sequence."""
    rng = random.Random(SEED)
    mismatches = 0
    for _ in range(DIFF_TRIALS):
        query = random_join_query(rng, rng.randint(2, 4), outer_probability=0.3)
        attr = rng.choice(query.real_attrs)
        ordered = Sort(query, ((attr, rng.random() < 0.5),))
        db = random_database(
            rng,
            tuple(sorted(query.base_names)),
            null_probability=0.2,
            max_rows=5,
        )
        want = evaluate(ordered, db)
        attrs = want.real.attrs
        sig = [tuple(repr(r[a]) for a in attrs) for r in want.rows]
        for engine in (execute, execute_vector):
            got = engine(ordered, db)
            if [tuple(repr(r[a]) for a in attrs) for r in got.rows] != sig:
                mismatches += 1
    return {"trials": DIFF_TRIALS, "mismatches": mismatches}


def run_suite():
    return {
        "agg": bench_aggregation(),
        "joins": bench_joins(),
        "dp": bench_dp_orders(),
        "diff": bench_differential(),
    }


def test_x21_order(benchmark):
    t0 = time.perf_counter()
    results = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    wall_s = time.perf_counter() - t0

    agg = results["agg"]
    assert agg["identical"], "streaming aggregation diverged from hash"
    if not QUICK:
        # the acceptance bar: streaming >= 2x over hashing at 100k
        assert agg["speedup"] >= 2.0, agg
    else:
        # at quick scale just require streaming not to lose
        assert agg["speedup"] >= 1.0, agg

    for row in results["joins"]:
        assert row["identical"], f"merge pairs diverged at n={row['n']}"

    for row in results["dp"]:
        assert row["satisfied"], row
        # criterion 3: never worse than order-blind + one root sort
        assert row["aware_cost"] <= row["blind_plus_sort"] + 1e-9, row

    assert results["diff"]["mismatches"] == 0

    lines = [
        f"streaming GROUP BY (SUM) over {agg['rows']} pre-sorted rows, "
        f"{agg['groups']} groups:",
        f"  hash {agg['hash_ms']:.1f} ms, streaming {agg['stream_ms']:.1f} ms "
        f"-> {agg['speedup']:.2f}x (identical output)",
        "",
        "merge vs hash pair generation over key-sorted inputs:",
    ]
    lines += table(
        ["rows/side", "pairs", "hash (ms)", "merge (ms)", "identical"],
        [
            [
                r["n"],
                r["pairs"],
                f"{r['hash_ms']:.1f}",
                f"{r['merge_ms']:.1f}",
                "ok" if r["identical"] else "MISMATCH",
            ]
            for r in results["joins"]
        ],
    )
    lines += ["", "order-aware DP vs blind-optimum + root sort (C_out):"]
    lines += table(
        ["n", "seed", "aware", "blind+sort", "ratio"],
        [
            [
                r["n"],
                r["seed"],
                f"{r['aware_cost']:.1f}",
                f"{r['blind_plus_sort']:.1f}",
                f"{r['ratio']:.3f}",
            ]
            for r in results["dp"]
        ],
    )
    diff = results["diff"]
    lines += [
        "",
        f"differential: {diff['trials']} ordered queries x 2 engines, "
        f"{diff['mismatches']} mismatches",
    ]
    report(
        "x21_order",
        "X21: order-aware planning" + (" [quick]" if QUICK else ""),
        lines,
    )
    json_record(
        "x21_order",
        wall_time_s=wall_s,
        quick=QUICK,
        agg=agg,
        joins=results["joins"],
        dp_ratio_best=min(r["ratio"] for r in results["dp"]),
        dp_ratio_worst=max(r["ratio"] for r in results["dp"]),
        differential_mismatches=diff["mismatches"],
    )
