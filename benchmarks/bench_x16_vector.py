"""X16 -- the vector engine at scale: 10k-100k rows per side.

Not a paper table -- the columnar engine's headline benchmark.  The
row engines stop being usable somewhere in the tens of thousands of
rows; this bench runs the vector engine on a selective filter ->
equi-join -> grouped aggregation pipeline at 10k/30k/100k rows per
side, keeps the hash engine only at the smallest scale (for the
speedup ratio and a bit-identical cross-check), and emits
``BENCH_x16_vector.json`` for the CI regression gate.

Quick mode (``REPRO_BENCH_QUICK=1``): the 10k scale only.
"""

import os
import random
import time

from repro.exec import execute, execute_vector
from repro.expr import BaseRel, Database, GroupBy, inner
from repro.expr.nodes import Select
from repro.expr.predicates import cmp_const, eq
from repro.relalg import Relation
from repro.relalg.aggregates import count_star, sum_

from harness import report, table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SIZES = (10_000,) if QUICK else (10_000, 30_000, 100_000)
HASH_CAP = 10_000  # row-at-a-time engine only runs at the smallest scale

R1 = BaseRel("r1", ("r1_a0", "r1_a1"))
R2 = BaseRel("r2", ("r2_a0", "r2_a1"))


def make_db(rng, n):
    rows1 = [(rng.randrange(n // 8), rng.randrange(100)) for _ in range(n)]
    rows2 = [(rng.randrange(n // 8), rng.randrange(100)) for _ in range(n)]
    return Database(
        {
            "r1": Relation.base("r1", ["r1_a0", "r1_a1"], rows1),
            "r2": Relation.base("r2", ["r2_a0", "r2_a1"], rows2),
        }
    )


def make_query():
    # filter one side, equi-join, then group with COUNT(*) and SUM --
    # exercises the selection-vector path, the gather-list join and
    # both the count-only and the member-slice aggregation paths
    return GroupBy(
        inner(
            Select(R1, cmp_const("r1_a1", "<", 50)),
            R2,
            eq("r1_a0", "r2_a0"),
        ),
        ("r1_a0",),
        (count_star("n"), sum_("r2_a1", "s")),
        "g",
    )


def _best_of(fn, reps=3):
    best, out = float("inf"), None
    for _ in range(reps):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def run_scales():
    query = make_query()
    rows = []
    for n in SIZES:
        rng = random.Random(n)
        db = make_db(rng, n)
        t_vector, vectored = _best_of(lambda: execute_vector(query, db))
        if n <= HASH_CAP:
            t_hash, hashed = _best_of(lambda: execute(query, db), reps=1)
            same = vectored.same_content(hashed)
        else:
            t_hash, same = None, True
        rows.append(
            {
                "n": n,
                "vector_ms": t_vector * 1000,
                "hash_ms": t_hash and t_hash * 1000,
                "out_rows": len(vectored),
                "same": same,
            }
        )
    return rows


def test_x16_vector(benchmark):
    start = time.perf_counter()
    rows = benchmark.pedantic(run_scales, rounds=1, iterations=1)
    wall = time.perf_counter() - start
    assert all(r["same"] for r in rows)
    smallest = rows[0]
    assert smallest["hash_ms"] is not None
    # the columnar engine must beat the row engine by a wide margin
    # even at the scale where the row engine still finishes
    assert smallest["vector_ms"] < smallest["hash_ms"] / 5
    speedup = smallest["hash_ms"] / smallest["vector_ms"]
    lines = table(
        ["rows/side", "vector (ms)", "hash engine (ms)", "output rows"],
        [
            [
                r["n"],
                f"{r['vector_ms']:.1f}",
                "-" if r["hash_ms"] is None else f"{r['hash_ms']:.0f}",
                r["out_rows"],
            ]
            for r in rows
        ],
    )
    lines += [
        "",
        f"Vector over hash at {HASH_CAP} rows/side: {speedup:.1f}x",
        "(bit-identical results; larger scales vector-only -- the",
        "row-at-a-time engines are no longer usable there).",
    ]
    report(
        "x16_vector",
        "X16: vector engine at scale" + (" [quick]" if QUICK else ""),
        lines,
        meta={
            "wall_time_s": wall,
            "quick": QUICK,
            "sizes": list(SIZES),
            "hash_cap": HASH_CAP,
            "speedup_vector_over_hash": speedup,
            "rows": rows,
        },
    )
