"""X9 -- Theorem 1 at scale: deferral soundness over random queries.

Generates random (outer) join queries with complex predicates, defers
every deferrable conjunct of every join, and verifies each compensated
expression against the original on randomized databases.  This is the
bench-sized version of the property tests: it reports how many
(query, conjunct) splits were checked and demands zero failures.
"""

import random

from repro.core.split import SplitError, defer_conjunct
from repro.expr import Join, evaluate
from repro.expr.predicates import conjuncts_of
from repro.expr.rewrite import iter_nodes
from repro.workloads.random_db import random_database, random_join_query

from harness import report, table

N_QUERIES = 60
DBS_PER_QUERY = 3


def run_hunt():
    rng = random.Random(2024)
    queries = 0
    splits = 0
    unsupported = 0
    failures = 0
    by_size: dict[int, int] = {}
    for _ in range(N_QUERIES):
        n = rng.randint(2, 5)
        query = random_join_query(
            rng, n, outer_probability=0.6, complex_probability=0.6
        )
        names = tuple(sorted(query.base_names))
        dbs = [
            random_database(rng, names, null_probability=0.15)
            for _ in range(DBS_PER_QUERY)
        ]
        references = [evaluate(query, db) for db in dbs]
        queries += 1
        for path, node in iter_nodes(query):
            if not isinstance(node, Join):
                continue
            for atom in conjuncts_of(node.predicate):
                try:
                    result = defer_conjunct(query, path, atom)
                except SplitError:
                    unsupported += 1
                    continue
                splits += 1
                by_size[n] = by_size.get(n, 0) + 1
                for db, want in zip(dbs, references):
                    if not evaluate(result.expr, db).same_content(want):
                        failures += 1
    return {
        "queries": queries,
        "splits": splits,
        "unsupported": unsupported,
        "failures": failures,
        "by_size": by_size,
    }


def test_x9_theorem1(benchmark):
    stats = benchmark.pedantic(run_hunt, rounds=1, iterations=1)
    assert stats["failures"] == 0
    assert stats["splits"] > 100
    rows = [
        ["queries generated", stats["queries"]],
        ["conjunct deferrals verified", stats["splits"]],
        ["deferrals skipped (overlapping groups)", stats["unsupported"]],
        ["equivalence failures", stats["failures"]],
    ]
    rows += [
        [f"  verified at {n} relations", c]
        for n, c in sorted(stats["by_size"].items())
    ]
    lines = table(["quantity", "value"], rows)
    report("x9_theorem1", "X9: Theorem 1 compensation soundness", lines)
