"""X22 -- process isolation vs threads, clean and under SIGKILL chaos.

Not a paper table: this bench prices the process boundary the
supervised worker pool (PR 9) adds, and proves that surviving worker
death is affordable.  A fixed workload of 5-relation join queries is
pushed through :class:`repro.runtime.QueryService` at 1, 4 and 8
workers in both isolation modes, clean and (process mode) under a 5%
``worker:kill9`` plan that SIGKILLs a child mid-query.  Tracked per
cell: throughput, p50/p99 service time, worker deaths, retries and
restarts.  Invariants asserted along the way:

* zero wrong answers anywhere -- a SIGKILLed worker's query is retried
  on a fresh process and still matches the fault-free reference
  evaluation;
* the kill9 storm actually kills (the cells report worker crashes, so
  the containment gate is not vacuous) and every crashed query is
  salvaged by retry (``failed == 0``);
* under kill9 the p99 stays within ``3x`` of the clean p99 at the same
  concurrency, plus the *measured* interpreter-respawn cost -- the one
  fixed platform tax a retried query cannot avoid paying (reported as
  ``respawn_ms`` in the record, so the gate self-calibrates to the
  box instead of encoding this machine's fork latency);
* on boxes with >= 4 CPUs, process isolation at 4 workers clears 2x
  the 1-worker qps clean on the vector engine (threads cannot: the
  GIL serializes them).  On smaller boxes the ratio is recorded and
  the assertion is skipped -- a scaling gate on one core measures the
  scheduler, not the pool.

Emits ``BENCH_x22_procpool.json``.  Quick mode (``REPRO_BENCH_QUICK=1``):
fewer queries, concurrency 1 and 4 only.
"""

import os
import random
import time

from repro.expr import evaluate
from repro.runtime.faults import FaultPlan
from repro.runtime.procpool import ProcPoolConfig
from repro.runtime.service import BreakerConfig, QueryService
from repro.workloads.random_db import random_database, random_join_query

from harness import json_record, report, table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

SEED = 42
#: fault-plan seed chosen so kill9@0.05 fires on query index 3 (and
#: only there, with no re-fire on the salted retry stream): every kill9
#: cell sees exactly one worker death in quick and full mode alike
FAULT_SEED = 51
N_RELATIONS = 5
N_QUERIES = 8 if QUICK else 16
CONCURRENCY = (1, 4) if QUICK else (1, 4, 8)
FAULTS = "worker:kill9@0.05"
P99_FACTOR = 3.0
SCALING_FACTOR = 2.0
SCALING_MIN_CPUS = 4

#: patient heartbeats (an 8-way spawn storm on a small box starves
#: children of CPU; a false hang-kill would corrupt the measurement),
#: near-free restart backoff
POOL = ProcPoolConfig(
    heartbeat_timeout_s=10.0,
    restart_backoff_s=0.01,
    restart_backoff_cap_s=0.05,
    restart_jitter_s=0.0,
)


def build_workload():
    rng = random.Random(SEED)
    names = [f"r{i}" for i in range(1, N_RELATIONS + 1)]
    db = random_database(rng, names, max_rows=20, null_probability=0.1, min_rows=10)
    queries = [
        random_join_query(rng, N_RELATIONS, outer_probability=0.4)
        for _ in range(N_QUERIES)
    ]
    truth = [evaluate(q, db) for q in queries]
    return db, queries, truth


def percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def measure_respawn_ms(db, query) -> float:
    """The fixed cost of standing up one worker interpreter.

    Cold first query minus warm second query isolates spawn + import
    time -- exactly the tax a kill9 retry pays before re-running.
    """
    service = QueryService(db, workers=1, isolation="process", procpool=POOL)
    try:
        t0 = time.perf_counter()
        service.run(query, timeout=600)
        t1 = time.perf_counter()
        service.run(query, timeout=600)
        t2 = time.perf_counter()
    finally:
        service.close()
    return max(0.0, ((t1 - t0) - (t2 - t1)) * 1000.0)


def run_cell(db, queries, truth, workers: int, isolation: str, faults) -> dict:
    service = QueryService(
        db,
        workers=workers,
        queue_depth=len(queries),
        engine="vector",
        isolation=isolation,
        fault_plan=FaultPlan.parse(faults, seed=FAULT_SEED) if faults else None,
        procpool=POOL if isolation == "process" else None,
        breaker=BreakerConfig(failure_threshold=3, window_s=60.0, cooldown_s=60.0),
    )
    wrong = 0
    latencies = []
    t0 = time.perf_counter()
    try:
        tickets = [service.submit(q) for q in queries]
        for ticket, expected in zip(tickets, truth):
            result = ticket.result(timeout=600)
            latencies.append(result.service_ms)
            if not result.relation.same_content(expected):
                wrong += 1
        wall = time.perf_counter() - t0
    finally:
        service.close()
    snap = service.snapshot()
    pool = snap["procpool"] or {}
    return {
        "workers": workers,
        "isolation": isolation,
        "faults": faults or "none",
        "queries": len(queries),
        "wall_s": wall,
        "qps": len(queries) / wall,
        "p50_ms": percentile(latencies, 0.50),
        "p99_ms": percentile(latencies, 0.99),
        "wrong": wrong,
        "failed": snap["failed"],
        "crashed": service.incidents.count("worker-crashed"),
        "retries": pool.get("retries", 0),
        "restarts": pool.get("restarts", 0),
    }


def run_grid():
    db, queries, truth = build_workload()
    respawn_ms = measure_respawn_ms(db, queries[0])
    cells = []
    for workers in CONCURRENCY:
        cells.append(run_cell(db, queries, truth, workers, "thread", None))
    for workers in CONCURRENCY:
        cells.append(run_cell(db, queries, truth, workers, "process", None))
    for workers in CONCURRENCY:
        cells.append(run_cell(db, queries, truth, workers, "process", FAULTS))
    return {"respawn_ms": respawn_ms, "cells": cells}


def _cell(cells, workers, isolation, faulted):
    return next(
        c
        for c in cells
        if c["workers"] == workers
        and c["isolation"] == isolation
        and (c["faults"] != "none") == faulted
    )


def test_x22_procpool(benchmark):
    wall0 = time.perf_counter()
    out = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    wall_time_s = time.perf_counter() - wall0
    cells, respawn_ms = out["cells"], out["respawn_ms"]

    # invariant: no wrong answer escaped anywhere in the grid
    assert all(cell["wrong"] == 0 for cell in cells)

    # invariant: the storm killed workers, and every crashed query was
    # salvaged by retry on a fresh process (nothing surfaced as failed)
    for workers in CONCURRENCY:
        faulted = _cell(cells, workers, "process", True)
        assert faulted["crashed"] >= 1, f"workers={workers}: kill9 never fired"
        assert faulted["retries"] >= 1
        assert faulted["failed"] == 0
        assert faulted["restarts"] > workers  # initial spawns + the respawn

    # invariant: worker death is contained in the tail -- the faulted
    # p99 stays within the containment factor of the clean p99 plus the
    # measured respawn cost (the fixed platform tax of a fresh child)
    for workers in CONCURRENCY:
        clean = _cell(cells, workers, "process", False)
        faulted = _cell(cells, workers, "process", True)
        limit = clean["p99_ms"] * P99_FACTOR + respawn_ms + 5.0
        assert faulted["p99_ms"] <= limit, (
            f"workers={workers}: kill9 p99 {faulted['p99_ms']:.1f}ms vs "
            f"clean {clean['p99_ms']:.1f}ms (respawn {respawn_ms:.0f}ms)"
        )

    # scaling: processes dodge the GIL -- but only if the box has the
    # cores to show it.  The ratio is always recorded.
    cpus = len(os.sched_getaffinity(0))
    one = _cell(cells, 1, "process", False)
    four = _cell(cells, 4, "process", False)
    scaling = four["qps"] / one["qps"]
    if cpus >= SCALING_MIN_CPUS:
        assert scaling >= SCALING_FACTOR, (
            f"4-worker process qps only {scaling:.2f}x of 1-worker "
            f"on {cpus} CPUs"
        )

    lines = table(
        [
            "workers",
            "isolation",
            "faults",
            "qps",
            "p50 (ms)",
            "p99 (ms)",
            "crashed",
            "retries",
            "restarts",
        ],
        [
            [
                c["workers"],
                c["isolation"],
                c["faults"],
                f"{c['qps']:.1f}",
                f"{c['p50_ms']:.1f}",
                f"{c['p99_ms']:.1f}",
                c["crashed"],
                c["retries"],
                c["restarts"],
            ]
            for c in cells
        ],
    )
    lines.append("")
    lines.append(
        f"cpus={cpus} respawn={respawn_ms:.0f}ms "
        f"4w/1w process scaling={scaling:.2f}x "
        f"(gate {'enforced' if cpus >= SCALING_MIN_CPUS else 'recorded only'})"
    )
    report("x22_procpool", "X22: process pool vs threads under kill9", lines)
    json_record(
        "x22_procpool",
        quick=QUICK,
        wall_time_s=wall_time_s,
        seed=SEED,
        fault_seed=FAULT_SEED,
        n_queries=N_QUERIES,
        fault_plan=FAULTS,
        cpus=cpus,
        respawn_ms=respawn_ms,
        scaling_4w_over_1w=scaling,
        scaling_gate_enforced=cpus >= SCALING_MIN_CPUS,
        p99_containment_factor=P99_FACTOR,
        wrong_answers=sum(c["wrong"] for c in cells),
        cells=cells,
    )
