"""X13 -- estimator quality: q-error across random queries.

The optimizer's picks are only as good as the cardinality estimates
behind them; this bench measures the q-error (max(est/actual,
actual/est)) of the Selinger-style estimator with exact statistics,
over random join queries and over the TPC-H-lite query suite, split by
operator depth.  It quantifies the honesty caveat attached to the X4
and X11 reports: estimates are tight on one join and drift with depth,
exactly the classical behaviour.
"""

import random

from repro.expr import Join, evaluate
from repro.expr.rewrite import iter_nodes
from repro.optimizer import Statistics, estimate
from repro.workloads.random_db import random_database, random_join_query

from harness import report, table


def q_error(est: float, actual: float) -> float:
    est = max(est, 0.5)
    actual = max(actual, 0.5)
    return max(est / actual, actual / est)


def run_measurement():
    rng = random.Random(2025)
    by_depth: dict[int, list[float]] = {}
    for _ in range(80):
        n = rng.randint(2, 4)
        query = random_join_query(
            rng, n, outer_probability=0.4, complex_probability=0.3
        )
        names = tuple(sorted(query.base_names))
        db = random_database(
            rng, names, max_rows=30, min_rows=10, null_probability=0.05
        )
        stats = Statistics.from_database(db)
        for path, node in iter_nodes(query):
            if not isinstance(node, Join):
                continue
            depth = len(node.base_names)
            est = estimate(node, stats).rows
            actual = len(evaluate(node, db))
            by_depth.setdefault(depth, []).append(q_error(est, actual))
    rows = []
    for depth in sorted(by_depth):
        errors = sorted(by_depth[depth])
        median = errors[len(errors) // 2]
        p90 = errors[int(len(errors) * 0.9)]
        rows.append(
            {
                "depth": depth,
                "n": len(errors),
                "median": median,
                "p90": p90,
                "max": errors[-1],
            }
        )
    return rows


def test_x13_estimator(benchmark):
    rows = benchmark.pedantic(run_measurement, rounds=1, iterations=1)
    # single joins with exact stats should be tight
    first = rows[0]
    assert first["median"] < 2.0
    lines = table(
        ["relations joined", "samples", "median q-error", "p90", "max"],
        [
            [
                r["depth"],
                r["n"],
                f"{r['median']:.2f}",
                f"{r['p90']:.2f}",
                f"{r['max']:.1f}",
            ]
            for r in rows
        ],
    )
    lines += [
        "",
        "With exact base statistics, single-join estimates are tight and",
        "errors compound with depth (independence assumptions), the",
        "classical Selinger-estimator profile.  This quantifies the",
        "estimator-noise caveat on the X4/X11 optimizer-pick columns.",
    ]
    report("x13_estimator", "X13: cardinality estimator q-error", lines)
