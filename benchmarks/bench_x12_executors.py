"""X12 -- executor scaling: reference vs hash engine vs physical plans.

Not a paper table -- an engineering benchmark for the library's own
claims: the hash-join engine and the physical operator layer must be
(a) semantically identical to the reference interpreter and (b)
asymptotically faster on equi-joins.  Reported: wall time of each
executor on a growing two-table equi-join plus a GROUP BY.
"""

import random
import time

from repro.exec import execute
from repro.expr import BaseRel, Database, GroupBy, evaluate, inner
from repro.expr.predicates import eq
from repro.physical import compile_plan, run_plan
from repro.relalg import Relation
from repro.relalg.aggregates import count_star

from harness import report, table

SIZES = (100, 300, 900)

R1 = BaseRel("r1", ("r1_a0", "r1_a1"))
R2 = BaseRel("r2", ("r2_a0", "r2_a1"))


def make_db(rng, n):
    rows1 = [(rng.randrange(n // 4), rng.randrange(50)) for _ in range(n)]
    rows2 = [(rng.randrange(n // 4), rng.randrange(50)) for _ in range(n)]
    return Database(
        {
            "r1": Relation.base("r1", ["r1_a0", "r1_a1"], rows1),
            "r2": Relation.base("r2", ["r2_a0", "r2_a1"], rows2),
        }
    )


def run_scaling():
    query = GroupBy(
        inner(R1, R2, eq("r1_a0", "r2_a0")),
        ("r1_a0",),
        (count_star("n"),),
        "g",
    )
    rows = []
    for n in SIZES:
        rng = random.Random(n)
        db = make_db(rng, n)

        start = time.perf_counter()
        want = evaluate(query, db)
        t_reference = time.perf_counter() - start

        start = time.perf_counter()
        fast = execute(query, db)
        t_fast = time.perf_counter() - start

        plan = compile_plan(query)
        start = time.perf_counter()
        physical = run_plan(plan, db)
        t_physical = time.perf_counter() - start

        plan_merge = compile_plan(query, prefer_merge=True)
        start = time.perf_counter()
        merged = run_plan(plan_merge, db)
        t_merge = time.perf_counter() - start

        same = (
            fast.same_content(want)
            and physical.same_content(want)
            and merged.same_content(want)
        )
        rows.append(
            {
                "n": n,
                "reference_ms": t_reference * 1000,
                "hash_ms": t_fast * 1000,
                "physical_ms": t_physical * 1000,
                "merge_ms": t_merge * 1000,
                "same": same,
            }
        )
    return rows


def test_x12_executors(benchmark):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    assert all(r["same"] for r in rows)
    biggest = rows[-1]
    assert biggest["hash_ms"] < biggest["reference_ms"] / 3
    assert biggest["physical_ms"] < biggest["reference_ms"] / 3
    lines = table(
        ["rows/side", "reference (ms)", "hash engine", "physical hash", "physical merge"],
        [
            [
                r["n"],
                f"{r['reference_ms']:.0f}",
                f"{r['hash_ms']:.0f}",
                f"{r['physical_ms']:.0f}",
                f"{r['merge_ms']:.0f}",
            ]
            for r in rows
        ],
    )
    lines += [
        "",
        "All executors agree bit for bit; the hash/merge implementations",
        "leave the quadratic reference interpreter behind, as they must.",
    ]
    report("x12_executors", "X12: executor scaling", lines)
