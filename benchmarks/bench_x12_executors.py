"""X12 -- executor scaling: reference vs hash vs vector engines.

Not a paper table -- an engineering benchmark for the library's own
claims: the hash-join engine, the physical operator layer and the
columnar vector engine must be (a) semantically identical to the
reference interpreter and (b) asymptotically faster on equi-joins.
Reported: wall time of each executor on a growing two-table equi-join
plus a GROUP BY.  The quadratic reference interpreter is capped at
900 rows/side; the linear engines continue to 3000.  Emits
``BENCH_x12_executors.json`` with the per-size timings and the
vector-over-hash speedup at the 900-row scale.
"""

import random
import time

from repro.exec import execute, execute_vector
from repro.expr import BaseRel, Database, GroupBy, evaluate, inner
from repro.expr.predicates import eq
from repro.physical import compile_plan, run_plan
from repro.relalg import Relation
from repro.relalg.aggregates import count_star

from harness import report, table

SIZES = (100, 300, 900, 3000)
REFERENCE_CAP = 900  # the interpreter's nested loops are O(n^2)

R1 = BaseRel("r1", ("r1_a0", "r1_a1"))
R2 = BaseRel("r2", ("r2_a0", "r2_a1"))


def make_db(rng, n):
    rows1 = [(rng.randrange(n // 4), rng.randrange(50)) for _ in range(n)]
    rows2 = [(rng.randrange(n // 4), rng.randrange(50)) for _ in range(n)]
    return Database(
        {
            "r1": Relation.base("r1", ["r1_a0", "r1_a1"], rows1),
            "r2": Relation.base("r2", ["r2_a0", "r2_a1"], rows2),
        }
    )


def _best_of(fn, reps=3):
    best, out = float("inf"), None
    for _ in range(reps):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def run_scaling():
    query = GroupBy(
        inner(R1, R2, eq("r1_a0", "r2_a0")),
        ("r1_a0",),
        (count_star("n"),),
        "g",
    )
    rows = []
    for n in SIZES:
        rng = random.Random(n)
        db = make_db(rng, n)

        t_hash, fast = _best_of(lambda: execute(query, db))
        t_vector, vectored = _best_of(lambda: execute_vector(query, db))

        plan = compile_plan(query)
        t_physical, physical = _best_of(lambda: run_plan(plan, db))

        plan_merge = compile_plan(query, prefer_merge=True)
        t_merge, merged = _best_of(lambda: run_plan(plan_merge, db))

        if n <= REFERENCE_CAP:
            t_reference, want = _best_of(lambda: evaluate(query, db), reps=1)
        else:
            t_reference, want = None, fast

        same = (
            fast.same_content(want)
            and vectored.same_content(want)
            and physical.same_content(want)
            and merged.same_content(want)
        )
        rows.append(
            {
                "n": n,
                "reference_ms": t_reference and t_reference * 1000,
                "hash_ms": t_hash * 1000,
                "vector_ms": t_vector * 1000,
                "physical_ms": t_physical * 1000,
                "merge_ms": t_merge * 1000,
                "same": same,
            }
        )
    return rows


def test_x12_executors(benchmark):
    start = time.perf_counter()
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    wall = time.perf_counter() - start
    assert all(r["same"] for r in rows)
    at_900 = next(r for r in rows if r["n"] == 900)
    assert at_900["hash_ms"] < at_900["reference_ms"] / 3
    assert at_900["physical_ms"] < at_900["reference_ms"] / 3
    # the vector engine's headline claim, with slack for noisy CI boxes
    assert at_900["vector_ms"] < at_900["hash_ms"] / 5
    speedup_900 = at_900["hash_ms"] / at_900["vector_ms"]
    lines = table(
        [
            "rows/side",
            "reference (ms)",
            "hash engine",
            "vector engine",
            "physical hash",
            "physical merge",
        ],
        [
            [
                r["n"],
                "-" if r["reference_ms"] is None else f"{r['reference_ms']:.0f}",
                f"{r['hash_ms']:.1f}",
                f"{r['vector_ms']:.2f}",
                f"{r['physical_ms']:.1f}",
                f"{r['merge_ms']:.1f}",
            ]
            for r in rows
        ],
    )
    lines += [
        "",
        "All executors agree bit for bit; the hash/merge implementations",
        "leave the quadratic reference interpreter behind, and the",
        f"columnar vector engine beats the hash engine {speedup_900:.1f}x",
        "at 900 rows/side (see benchmarks/bench_x16_vector.py for the",
        "10k-100k row scales).",
    ]
    report(
        "x12_executors",
        "X12: executor scaling",
        lines,
        meta={
            "wall_time_s": wall,
            "sizes": list(SIZES),
            "reference_cap": REFERENCE_CAP,
            "speedup_vector_over_hash_at_900": speedup_900,
            "rows": rows,
        },
    )
